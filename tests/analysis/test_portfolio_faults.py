"""Fault injection for the portfolio race, via the WorkerHarness seam.

A virtual clock, a scripted queue and fake process handles let every
failure mode run deterministically with no real processes: worker
crash mid-solve, worker hang past the member timeout, all members
failing, a queue poisoned with unreadable or malformed payloads, and
cancel-on-first-verdict actually terminating and joining the losers.

Two real-process integration tests close the loop on the acceptance
criterion: a worker ``SIGKILL``-ed mid-race still yields a correct
verdict from a survivor, and no child processes outlive the race.
"""

import multiprocessing
import os
import pickle
import queue as queue_module
import signal

import pytest

from repro.analysis import (AnalysisSpec, MemberFailure, PortfolioBackend,
                            PortfolioError, WorkerHarness, analyze,
                            member_spec)
from repro.petri.generators import figure1_net, philosophers

# ----------------------------------------------------------------------
# Virtual-clock fakes
# ----------------------------------------------------------------------


class VirtualClock:
    def __init__(self):
        self.t = 0.0


class ScriptedQueue:
    """Delivers scripted ``(time, event)`` pairs against the clock.

    ``get(timeout)`` returns the next event whose time falls inside the
    window, advancing the clock to it; events that are exceptions are
    raised (the poisoned-queue case).  Otherwise the clock advances by
    the full timeout and ``queue.Empty`` is raised, exactly like the
    real queue — just without wall-clock waiting.
    """

    def __init__(self, clock, events=()):
        self.clock = clock
        self.events = sorted(events, key=lambda item: item[0])

    def get(self, timeout):
        if self.events and self.events[0][0] <= self.clock.t + timeout:
            at, event = self.events.pop(0)
            self.clock.t = max(self.clock.t, at)
            if isinstance(event, BaseException):
                raise event
            return event
        self.clock.t += timeout
        raise queue_module.Empty


class FakeHandle:
    """A process handle whose liveness is a function of virtual time."""

    def __init__(self, clock, dies_at=None, exitcode=1):
        self.clock = clock
        self.dies_at = dies_at
        self.death_exitcode = exitcode
        self.terminated = False
        self.killed = False
        self.joined = False

    def is_alive(self):
        if self.terminated or self.killed:
            return False
        return self.dies_at is None or self.clock.t < self.dies_at

    @property
    def exitcode(self):
        if self.is_alive():
            return None
        if self.terminated or self.killed:
            return -signal.SIGTERM
        return self.death_exitcode

    def terminate(self):
        self.terminated = True

    def kill(self):
        self.killed = True

    def join(self, timeout=None):
        self.joined = True


class FakeHarness(WorkerHarness):
    """Scripted member behavior; never touches multiprocessing."""

    def __init__(self, clock, events=(), handles=None, spawn_cost=0.0):
        super().__init__()
        self.clock = clock
        self.queue = ScriptedQueue(clock, events)
        self.handles = handles or {}
        self.spawn_cost = spawn_cost
        self.spawned = []

    def available(self):
        return True

    def create_queue(self):
        return self.queue

    def spawn(self, member, target, args):
        self.clock.t += self.spawn_cost
        self.spawned.append(member)
        handle = self.handles.get(member)
        if handle is None:
            handle = FakeHandle(self.clock)
            self.handles[member] = handle
        return handle

    def now(self):
        return self.clock.t

    def poll_interval(self):
        return 0.05


@pytest.fixture(scope="module")
def payload_for():
    """Real result payloads, as a worker would put them on the queue."""
    results = {}

    def make(member, at):
        if member not in results:
            spec = member_spec(AnalysisSpec(backend="portfolio"), member)
            results[member] = analyze(figure1_net(), spec)
        result = results[member]
        return (at, ("result", member, result.to_dict(), result.seconds))

    return make


def race(harness, **spec_overrides):
    spec = AnalysisSpec(backend="portfolio", **spec_overrides)
    backend = PortfolioBackend(harness=harness)
    return backend.build(figure1_net(), spec).run()


def outcome_of(result, member):
    rows = {row["member"]: row
            for row in result.extras["portfolio"]["members"]}
    return rows[member]["outcome"]


def assert_no_orphans(harness):
    """Every spawned handle ended dead and joined — no orphans."""
    for member, handle in harness.handles.items():
        assert not handle.is_alive(), member
        assert handle.joined, member


# ----------------------------------------------------------------------
# The injected faults
# ----------------------------------------------------------------------


class TestWorkerCrash:
    def test_crash_mid_solve_survivor_wins(self, payload_for):
        clock = VirtualClock()
        harness = FakeHarness(
            clock,
            events=[payload_for("zdd-chained", 1.0)],
            handles={"bdd-chained": FakeHandle(clock, dies_at=0.2,
                                               exitcode=-signal.SIGSEGV)})
        result = race(harness,
                      portfolio_members=("bdd-chained", "zdd-chained"))
        assert result.markings == 8
        assert result.extras["portfolio"]["winner"] == "zdd-chained"
        assert outcome_of(result, "bdd-chained") == "crash"
        failures = result.extras["portfolio"]["failures"]
        crash = next(f for f in failures if f["kind"] == "crash")
        assert crash["member"] == "bdd-chained"
        # The exit code is surfaced in the structured record.
        assert crash["exitcode"] == -signal.SIGSEGV
        assert str(-signal.SIGSEGV) in crash["detail"]
        assert_no_orphans(harness)

    def test_exited_worker_with_flushed_verdict_is_not_a_crash(
            self, payload_for):
        # A worker that finishes and exits may be seen dead before its
        # verdict is read; the grace polls must deliver the verdict
        # instead of declaring a crash.
        clock = VirtualClock()
        harness = FakeHarness(
            clock,
            events=[payload_for("bdd-chained", 0.30)],
            handles={"bdd-chained": FakeHandle(clock, dies_at=0.25,
                                               exitcode=0)})
        result = race(harness, portfolio_members=("bdd-chained",
                                                  "zdd-chained"))
        assert result.extras["portfolio"]["winner"] == "bdd-chained"
        assert result.extras["portfolio"]["failures"] == []


class TestWorkerHang:
    def test_hang_past_member_timeout_survivor_wins(self, payload_for):
        # Spawns are staggered (0.3s each), so the hanging first member
        # exhausts its budget while the second is still inside its own.
        clock = VirtualClock()
        hang = FakeHandle(clock)  # never dies on its own
        harness = FakeHarness(
            clock,
            events=[payload_for("zdd-chained", 0.6)],
            handles={"bdd-chained": hang},
            spawn_cost=0.3)
        result = race(harness,
                      portfolio_members=("bdd-chained", "zdd-chained"),
                      member_timeout=0.5)
        assert result.extras["portfolio"]["winner"] == "zdd-chained"
        assert outcome_of(result, "bdd-chained") == "timeout"
        assert hang.terminated
        failures = result.extras["portfolio"]["failures"]
        assert any(f["kind"] == "timeout"
                   and f["member"] == "bdd-chained" for f in failures)
        assert_no_orphans(harness)

    def test_global_timeout_fails_the_race(self):
        clock = VirtualClock()
        harness = FakeHarness(clock)  # nobody ever answers
        with pytest.raises(PortfolioError) as excinfo:
            race(harness,
                 portfolio_members=("bdd-chained", "zdd-chained"),
                 timeout=2.0)
        kinds = {f.kind for f in excinfo.value.failures}
        assert kinds == {"timeout"}
        assert len(excinfo.value.failures) == 2
        assert clock.t == pytest.approx(2.0, abs=0.2)
        assert_no_orphans(harness)


class TestAllMembersFail:
    def test_every_member_erroring_raises_portfolio_error(self):
        clock = VirtualClock()
        events = [
            (0.1, ("error", "bdd-chained", "RuntimeError: exceeded")),
            (0.2, ("error", "zdd-chained", "MemoryError: boom")),
        ]
        harness = FakeHarness(clock, events=events)
        with pytest.raises(PortfolioError) as excinfo:
            race(harness,
                 portfolio_members=("bdd-chained", "zdd-chained"))
        failures = excinfo.value.failures
        assert {f.member for f in failures} == {"bdd-chained",
                                                "zdd-chained"}
        assert all(f.kind == "error" for f in failures)
        assert "MemoryError: boom" in str(excinfo.value)
        assert_no_orphans(harness)


class TestPoisonedQueue:
    def test_unreadable_payload_race_continues(self, payload_for):
        clock = VirtualClock()
        poison = pickle.UnpicklingError("invalid load key, 'x'")
        harness = FakeHarness(
            clock,
            events=[(0.1, poison), payload_for("zdd-chained", 0.5)])
        result = race(harness,
                      portfolio_members=("bdd-chained", "zdd-chained"))
        assert result.extras["portfolio"]["winner"] == "zdd-chained"
        queue_failures = [f for f in
                          result.extras["portfolio"]["failures"]
                          if f["kind"] == "queue"]
        assert len(queue_failures) == 1
        # Poison cannot be attributed to a member.
        assert queue_failures[0]["member"] is None
        assert "UnpicklingError" in queue_failures[0]["detail"]

    def test_malformed_payload_race_continues(self, payload_for):
        clock = VirtualClock()
        harness = FakeHarness(
            clock,
            events=[(0.1, ("gibberish",)),
                    payload_for("zdd-chained", 0.5)])
        result = race(harness,
                      portfolio_members=("bdd-chained", "zdd-chained"))
        assert result.extras["portfolio"]["winner"] == "zdd-chained"
        assert any(f["kind"] == "queue" and "malformed" in f["detail"]
                   for f in result.extras["portfolio"]["failures"])

    def test_persistently_poisoned_queue_aborts_cleanly(self):
        clock = VirtualClock()
        events = [(0.1 * i, pickle.UnpicklingError("poison"))
                  for i in range(1, 6)]
        harness = FakeHarness(clock, events=events)
        with pytest.raises(PortfolioError) as excinfo:
            race(harness,
                 portfolio_members=("bdd-chained", "zdd-chained"))
        assert any(f.kind == "queue" for f in excinfo.value.failures)
        assert any("queue unusable" in f.detail
                   for f in excinfo.value.failures)
        assert_no_orphans(harness)


class TestCancellation:
    def test_first_verdict_terminates_and_joins_losers(self, payload_for):
        clock = VirtualClock()
        harness = FakeHarness(
            clock, events=[payload_for("bdd-functional", 0.2)])
        members = ("bdd-functional", "bdd-chained", "zdd-chained",
                   "kbounded")
        result = race(harness, portfolio_members=members)
        assert harness.spawned == list(members)
        assert result.extras["portfolio"]["winner"] == "bdd-functional"
        for loser in members[1:]:
            assert outcome_of(result, loser) == "cancelled"
            assert harness.handles[loser].terminated, loser
        assert_no_orphans(harness)

    def test_late_message_from_resolved_member_is_ignored(
            self, payload_for):
        # The loser's verdict lands after the winner's: no failure, no
        # double-win.
        clock = VirtualClock()
        harness = FakeHarness(
            clock,
            events=[payload_for("bdd-chained", 0.2),
                    payload_for("zdd-chained", 0.2)])
        result = race(harness,
                      portfolio_members=("bdd-chained", "zdd-chained"))
        assert result.extras["portfolio"]["winner"] == "bdd-chained"


# ----------------------------------------------------------------------
# Real processes: the acceptance-criterion integration tests
# ----------------------------------------------------------------------


class KillOneHarness(WorkerHarness):
    """Spawns real workers, then SIGKILLs one mid-race."""

    def __init__(self, victim):
        super().__init__()
        self.victim = victim

    def spawn(self, member, target, args):
        process = super().spawn(member, target, args)
        if member == self.victim:
            os.kill(process.pid, signal.SIGKILL)
        return process


needs_multiprocessing = pytest.mark.skipif(
    not WorkerHarness().available(),
    reason="platform cannot run multiprocessing queues")


@needs_multiprocessing
class TestRealProcesses:
    def test_killed_worker_mid_race_survivor_wins(self):
        harness = KillOneHarness(victim="bdd-functional")
        spec = AnalysisSpec(
            backend="portfolio",
            portfolio_members=("bdd-functional", "zdd-chained"),
            timeout=60.0)
        result = PortfolioBackend(harness=harness).build(
            figure1_net(), spec).run()
        assert result.markings == 8
        assert result.extras["portfolio"]["winner"] == "zdd-chained"
        crash = next(f for f in result.extras["portfolio"]["failures"]
                     if f["kind"] == "crash")
        assert crash["member"] == "bdd-functional"
        assert crash["exitcode"] == -signal.SIGKILL
        assert multiprocessing.active_children() == []

    def test_race_leaves_no_live_children(self):
        result = analyze(figure1_net(),
                         AnalysisSpec(backend="portfolio", timeout=60.0))
        assert result.markings == 8
        assert result.extras["portfolio"]["mode"] == "process"
        assert multiprocessing.active_children() == []

    def test_all_members_fail_for_real(self):
        # max_iterations=1 threads through to every member, and no
        # member's fixpoint converges that fast: a real all-fail race.
        with pytest.raises(PortfolioError) as excinfo:
            analyze(philosophers(3),
                    AnalysisSpec(backend="portfolio", max_iterations=1,
                                 timeout=60.0))
        assert len(excinfo.value.failures) == 4
        assert all(f.kind == "error" for f in excinfo.value.failures)
        assert all("exceeded 1 iterations" in f.detail
                   for f in excinfo.value.failures)
        assert multiprocessing.active_children() == []

    @pytest.mark.slow
    def test_real_member_timeout_terminates_the_laggard(self):
        # phil-6 with a millisecond budget: every member times out and
        # is terminated for real, none survives as a zombie.
        with pytest.raises(PortfolioError) as excinfo:
            analyze(philosophers(6),
                    AnalysisSpec(backend="portfolio",
                                 member_timeout=0.001, timeout=60.0))
        assert all(f.kind == "timeout" for f in excinfo.value.failures)
        assert multiprocessing.active_children() == []

    @pytest.mark.slow
    def test_phil6_race_matches_member_verdicts(self):
        result = analyze(philosophers(6),
                         AnalysisSpec(backend="portfolio", timeout=120.0))
        parent = AnalysisSpec(backend="portfolio")
        for member in parent.resolved_members:
            direct = analyze(philosophers(6),
                             member_spec(parent, member))
            assert direct.markings == result.markings, member
        assert multiprocessing.active_children() == []


# ----------------------------------------------------------------------
# Checkpoint-resume retries
# ----------------------------------------------------------------------


class RespawningHarness(FakeHarness):
    """Like FakeHarness, but each spawn attempt pops a fresh handle
    from a per-member list — the retry path respawns members, and a
    fake must not resurrect the dead handle of the failed attempt."""

    def __init__(self, clock, events=(), handle_queues=None,
                 spawn_cost=0.0):
        super().__init__(clock, events=events, handles={},
                         spawn_cost=spawn_cost)
        self.handle_queues = dict(handle_queues or {})
        self.all_handles = []

    def spawn(self, member, target, args):
        self.clock.t += self.spawn_cost
        self.spawned.append(member)
        pending = self.handle_queues.get(member)
        handle = pending.pop(0) if pending else FakeHandle(self.clock)
        self.handles[member] = handle
        self.all_handles.append((member, handle))
        return handle


def race_with_checkpoint(harness, tmp_path, members,
                         checkpointed=(), **spec_overrides):
    """Run a fake race with --checkpoint set; ``checkpointed`` members
    get a pre-existing member checkpoint file (existence is what makes
    them retry-eligible)."""
    path = tmp_path / "race.ckpt"
    for member in checkpointed:
        (tmp_path / f"race.ckpt.{member}").write_text("stub\n")
    spec = AnalysisSpec(backend="portfolio",
                        portfolio_members=members,
                        checkpoint_path=str(path), **spec_overrides)
    backend = PortfolioBackend(harness=harness)
    return backend.build(figure1_net(), spec).run()


class TestCheckpointRetries:
    def test_crash_with_checkpoint_is_retried_and_wins(
            self, payload_for, tmp_path):
        clock = VirtualClock()
        dying = FakeHandle(clock, dies_at=0.2, exitcode=-signal.SIGKILL)
        revived = FakeHandle(clock)
        harness = RespawningHarness(
            clock,
            events=[payload_for("bdd-chained", 2.5)],
            handle_queues={"bdd-chained": [dying, revived]})
        result = race_with_checkpoint(
            harness, tmp_path, ("bdd-chained",),
            checkpointed=("bdd-chained",))
        race = result.extras["portfolio"]
        assert race["winner"] == "bdd-chained"
        assert result.markings == 8
        # The member was spawned twice and won on its second attempt.
        assert harness.spawned == ["bdd-chained", "bdd-chained"]
        rows = {r["member"]: r for r in race["members"]}
        assert rows["bdd-chained"]["outcome"] == "won"
        assert rows["bdd-chained"]["attempts"] == 2
        # The retry event is in the telemetry, with the crash on file.
        assert len(race["retries"]) == 1
        retry = race["retries"][0]
        assert retry["member"] == "bdd-chained"
        assert retry["reason"] == "crash"
        assert retry["attempt"] == 1
        assert retry["checkpoint"].endswith(".bdd-chained")
        assert any(f["kind"] == "crash" for f in race["failures"])
        # The resumed spec really asks for a resume.
        assert dying.terminated or not dying.is_alive()

    def test_member_timeout_with_checkpoint_is_retried(
            self, payload_for, tmp_path):
        clock = VirtualClock()
        hung = FakeHandle(clock)   # never finishes on its own
        revived = FakeHandle(clock)
        harness = RespawningHarness(
            clock,
            events=[payload_for("bdd-chained", 1.3)],
            handle_queues={"bdd-chained": [hung, revived]})
        result = race_with_checkpoint(
            harness, tmp_path, ("bdd-chained",),
            checkpointed=("bdd-chained",),
            member_timeout=0.5)
        race = result.extras["portfolio"]
        assert race["winner"] == "bdd-chained"
        assert hung.terminated  # the hung attempt was really stopped
        assert len(race["retries"]) == 1
        assert race["retries"][0]["reason"] == "timeout"
        rows = {r["member"]: r for r in race["members"]}
        assert rows["bdd-chained"]["attempts"] == 2

    def test_no_checkpoint_file_means_no_retry(self, tmp_path):
        # checkpoint_path is set, but the member never wrote its file:
        # nothing to resume from, so the crash resolves immediately.
        clock = VirtualClock()
        harness = RespawningHarness(
            clock,
            handle_queues={"bdd-chained": [
                FakeHandle(clock, dies_at=0.1, exitcode=-9)]})
        with pytest.raises(PortfolioError):
            race_with_checkpoint(harness, tmp_path, ("bdd-chained",),
                                 checkpointed=())
        assert harness.spawned == ["bdd-chained"]

    def test_retries_are_bounded(self, tmp_path):
        # Every attempt crashes: the original plus MEMBER_MAX_RETRIES
        # retries, then the member is written off and the race fails.
        from repro.analysis.portfolio import MEMBER_MAX_RETRIES
        clock = VirtualClock()
        handles = [FakeHandle(clock, dies_at=0.1 + 2.0 * i, exitcode=-9)
                   for i in range(MEMBER_MAX_RETRIES + 1)]
        harness = RespawningHarness(
            clock, handle_queues={"bdd-chained": list(handles)})
        with pytest.raises(PortfolioError) as excinfo:
            race_with_checkpoint(harness, tmp_path, ("bdd-chained",),
                                 checkpointed=("bdd-chained",))
        assert len(harness.spawned) == MEMBER_MAX_RETRIES + 1
        crashes = [f for f in excinfo.value.failures
                   if f.kind == "crash"]
        assert len(crashes) == MEMBER_MAX_RETRIES + 1
        for handle in handles:
            assert not handle.is_alive()

    def test_winner_cancels_a_pending_retry(self, payload_for,
                                            tmp_path):
        # bdd-chained crashes and is waiting out its backoff when
        # zdd-chained wins: the pending retry resolves as cancelled.
        clock = VirtualClock()
        harness = RespawningHarness(
            clock,
            events=[payload_for("zdd-chained", 0.55)],
            handle_queues={"bdd-chained": [
                FakeHandle(clock, dies_at=0.1, exitcode=-9)]})
        result = race_with_checkpoint(
            harness, tmp_path, ("bdd-chained", "zdd-chained"),
            checkpointed=("bdd-chained",))
        race = result.extras["portfolio"]
        assert race["winner"] == "zdd-chained"
        rows = {r["member"]: r for r in race["members"]}
        assert rows["bdd-chained"]["outcome"] == "cancelled"
        assert len(race["retries"]) == 1
        # Only the two original spawns: the retry never launched.
        assert sorted(harness.spawned) == ["bdd-chained", "zdd-chained"]

    def test_member_specs_carry_per_member_checkpoints(self, tmp_path):
        from repro.analysis import member_checkpoint_path
        spec = AnalysisSpec(backend="portfolio",
                            checkpoint_path=str(tmp_path / "r.ckpt"),
                            checkpoint_every=3)
        mspec = member_spec(spec, "zdd-chained")
        assert mspec.checkpoint_path == str(tmp_path / "r.ckpt") \
            + ".zdd-chained"
        assert mspec.checkpoint_path == member_checkpoint_path(
            spec, "zdd-chained")
        assert mspec.checkpoint_every == 3
        # Without a portfolio checkpoint, members get none either.
        assert member_spec(AnalysisSpec(backend="portfolio"),
                           "zdd-chained").checkpoint_path is None
