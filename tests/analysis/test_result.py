"""AnalysisResult: the unified schema and its JSON round trip."""

import json

import pytest

from repro.analysis import (SCHEMA_VERSION, AnalysisResult, AnalysisSpec,
                            analyze)
from repro.petri.generators import figure1_net


def sample_result(**overrides):
    values = dict(
        spec=AnalysisSpec(form="relational", engine="chained"),
        engine="relational/chained",
        markings=8,
        iterations=4,
        variables=4,
        final_nodes=11,
        peak_nodes=184,
        seconds=0.125,
        reorder_count=1,
        extras={"cluster_size": "auto", "build_seconds": 0.01},
        reachable=object(),
    )
    values.update(overrides)
    return AnalysisResult(**values)


class TestRoundTrip:
    def test_json_round_trip_preserves_everything_but_reachable(self):
        result = sample_result()
        payload = json.loads(json.dumps(result.to_dict()))
        restored = AnalysisResult.from_dict(payload)
        assert restored.reachable is None
        assert restored.spec == result.spec
        for field in ("engine", "markings", "iterations", "variables",
                      "final_nodes", "peak_nodes", "seconds",
                      "reorder_count", "extras"):
            assert getattr(restored, field) == getattr(result, field)
        # And the dict itself is stable under a second round trip.
        assert restored.to_dict() == result.to_dict()

    def test_schema_version_stamped(self):
        assert sample_result().to_dict()["schema"] == SCHEMA_VERSION

    @pytest.mark.parametrize("schema", [None, 0, SCHEMA_VERSION + 1])
    def test_wrong_schema_rejected(self, schema):
        payload = sample_result().to_dict()
        if schema is None:
            del payload["schema"]
        else:
            payload["schema"] = schema
        with pytest.raises(ValueError, match="schema"):
            AnalysisResult.from_dict(payload)

    def test_reachable_never_serialized(self):
        assert "reachable" not in sample_result().to_dict()


class TestLiveResults:
    @pytest.mark.parametrize("spec", [
        AnalysisSpec(),
        AnalysisSpec(form="relational"),
        AnalysisSpec(backend="zdd"),
        AnalysisSpec(backend="zdd", form="functional"),
        AnalysisSpec(k_bound=2),
    ])
    def test_every_backend_serializes(self, spec):
        result = analyze(figure1_net(), spec)
        restored = AnalysisResult.from_dict(
            json.loads(json.dumps(result.to_dict())))
        assert restored.markings == result.markings == 8
        assert restored.engine == spec.engine_id
        assert restored.peak_nodes > 0
        assert restored.extras["build_seconds"] >= 0
        assert restored.extras["fixpoint_seconds"] >= 0

    def test_seconds_is_build_plus_fixpoint(self):
        result = analyze(figure1_net(), AnalysisSpec())
        assert result.seconds == pytest.approx(
            result.extras["build_seconds"]
            + result.extras["fixpoint_seconds"])


class TestRegressionGateSchema:
    def test_check_regression_reads_both_row_shapes(self):
        # The CI gate accepts native bench rows and serialized
        # AnalysisResult dicts interchangeably.
        import os
        import sys
        sys.path.insert(0, os.path.join(os.path.dirname(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__)))),
            "benchmarks"))
        try:
            from check_regression import image_seconds
        finally:
            sys.path.pop(0)
        assert image_seconds({"image_seconds": 1.5}) == 1.5
        result = analyze(figure1_net(), AnalysisSpec(form="relational"))
        entry = result.to_dict()
        assert image_seconds(entry) == pytest.approx(
            result.extras["fixpoint_seconds"])
        # Forward compatibility: a newer schema (or one without the
        # extras breakdown) still yields a timing instead of crashing
        # the gate.
        assert image_seconds({"schema": 99, "seconds": 2.5}) == 2.5


class TestForwardCompatibility:
    """Payloads from a newer build must not poison an older reader.

    The service's result cache is shared between builds; only a
    *major* schema change may refuse a payload.
    """

    def test_newer_minor_schema_tolerated_and_logged(self, caplog):
        import logging

        from repro.analysis import SCHEMA_MINOR
        payload = sample_result().to_dict()
        payload["schema_minor"] = SCHEMA_MINOR + 3
        with caplog.at_level(logging.WARNING, "repro.analysis.result"):
            restored = AnalysisResult.from_dict(payload)
        assert restored.markings == 8
        assert any("schema minor" in record.message
                   for record in caplog.records)

    def test_unknown_top_level_keys_kept_and_reemitted(self, caplog):
        import logging
        payload = sample_result().to_dict()
        payload["proof_certificate"] = {"kind": "inductive"}
        with caplog.at_level(logging.WARNING, "repro.analysis.result"):
            restored = AnalysisResult.from_dict(payload)
        assert restored.foreign == {
            "proof_certificate": {"kind": "inductive"}}
        assert any("unknown fields" in record.message
                   for record in caplog.records)
        # Round trip: the foreign field survives re-serialization ...
        again = restored.to_dict()
        assert again["proof_certificate"] == {"kind": "inductive"}
        # ... without clobbering owned keys or fracturing a re-read.
        assert AnalysisResult.from_dict(again).markings == 8

    def test_unknown_extras_keys_kept_silently(self):
        payload = sample_result().to_dict()
        payload["extras"]["experimental_counter"] = 42
        restored = AnalysisResult.from_dict(payload)
        assert restored.extras["experimental_counter"] == 42

    def test_unknown_spec_fields_tolerated(self, caplog):
        import logging
        payload = sample_result().to_dict()
        payload["spec"]["holographic_mode"] = True
        with caplog.at_level(logging.WARNING, "repro.analysis.spec"):
            restored = AnalysisResult.from_dict(payload)
        assert restored.spec.engine_id == "relational/chained"
        assert any("unknown spec fields" in record.message
                   for record in caplog.records)

    def test_major_mismatch_still_rejected(self):
        payload = sample_result().to_dict()
        payload["schema"] = SCHEMA_VERSION + 1
        with pytest.raises(ValueError, match="schema"):
            AnalysisResult.from_dict(payload)

    def test_default_foreign_is_empty_and_not_serialized(self):
        payload = sample_result().to_dict()
        restored = AnalysisResult.from_dict(payload)
        assert restored.foreign == {}
        assert set(payload) == {
            "schema", "schema_minor", "spec", "engine", "markings",
            "iterations", "variables", "final_nodes", "peak_nodes",
            "seconds", "reorder_count", "status", "extras"}
