"""AnalysisSpec: validation, defaults, warnings, serialization."""

import pytest

from repro.analysis import (DEFAULT_CLUSTER_SIZE,
                            DEFAULT_PORTFOLIO_MEMBERS,
                            DEFAULT_RELATIONAL_ENGINE, AnalysisSpec,
                            SpecError, SpecWarning)
from repro.cli import _build_parser


class TestDefaults:
    def test_bdd_defaults_to_functional(self):
        spec = AnalysisSpec()
        assert spec.resolved_form == "functional"
        assert spec.resolved_engine == "functional"
        assert spec.engine_id == "functional"
        assert spec.scheme == "improved"
        assert spec.reorder is True

    def test_zdd_defaults_to_chained_relational(self):
        spec = AnalysisSpec(backend="zdd")
        assert spec.resolved_form == "relational"
        assert spec.resolved_engine == DEFAULT_RELATIONAL_ENGINE
        assert spec.engine_id == "zdd/chained"

    def test_relational_engine_default_is_shared(self):
        # One default, defined once: both backends resolve the same
        # relational engine when none is named.
        bdd = AnalysisSpec(form="relational")
        zdd = AnalysisSpec(backend="zdd", form="relational")
        assert bdd.resolved_engine == zdd.resolved_engine == "chained"
        assert bdd.resolved_cluster_size == zdd.resolved_cluster_size \
            == DEFAULT_CLUSTER_SIZE

    def test_runner_default_matches_spec_default(self):
        # The historical skew: runner.run_zdd defaulted to classic
        # while the CLI favored the chained path.  Both now resolve
        # through AnalysisSpec.
        from repro.experiments.runner import engine_label, run_zdd
        from repro.petri.generators import figure1_net
        row = run_zdd("fig1", figure1_net())
        assert row.engine == engine_label(AnalysisSpec(backend="zdd"))

    def test_cli_default_matches_spec_default(self):
        args = _build_parser().parse_args(["analyze", "x.pnet"])
        assert AnalysisSpec.from_args(args) == AnalysisSpec()
        args = _build_parser().parse_args(
            ["analyze", "x.pnet", "--engine", "zdd"])
        assert AnalysisSpec.from_args(args) == AnalysisSpec(backend="zdd")

    def test_k_bound_resolution(self):
        spec = AnalysisSpec(k_bound=3)
        assert spec.resolved_engine == "kbounded"
        assert spec.engine_id == "kbounded/3"


class TestValidationErrors:
    @pytest.mark.parametrize("kwargs", [
        {"scheme": "huffman"},
        {"backend": "mdd"},
        {"form": "algebraic"},
        {"engine": "quantum"},
        {"strategy": "dfs"},
        {"chain_order": "random"},
        {"engine": "chained"},                       # functional form
        {"form": "functional", "engine": "chained"},
        {"cluster_size": 4},                         # functional form
        {"cluster_size": 0, "form": "relational"},
        {"cluster_size": -2, "form": "relational"},
        {"cluster_size": "big", "form": "relational"},
        {"backend": "zdd", "k_bound": 2},
        {"k_bound": 0},
        {"k_bound": 2, "form": "relational"},
        {"k_bound": 2, "cluster_size": 4},
        {"reorder_threshold": 0},
        {"max_iterations": 0},
        {"backend": "portfolio", "engine": "chained"},
        {"backend": "portfolio", "form": "relational"},
        {"backend": "portfolio", "cluster_size": 4},
        {"portfolio_members": ("bdd-chained",)},     # bdd backend
        {"backend": "portfolio", "portfolio_members": ()},
        {"backend": "portfolio", "portfolio_members": ("sat-solver",)},
        {"backend": "portfolio",
         "portfolio_members": ("bdd-chained", "bdd-chained")},
        {"timeout": 60.0},                           # bdd backend
        {"backend": "zdd", "member_timeout": 5.0},
        {"backend": "portfolio", "timeout": 0},
        {"backend": "portfolio", "member_timeout": -1.0},
    ])
    def test_bad_combinations_raise(self, kwargs):
        with pytest.raises(SpecError):
            AnalysisSpec(**kwargs)

    def test_error_message_names_the_fix(self):
        with pytest.raises(SpecError, match="form='relational'"):
            AnalysisSpec(engine="partitioned")
        with pytest.raises(SpecError, match="no partitions to cluster"):
            AnalysisSpec(cluster_size=8)


class TestWarnings:
    @pytest.mark.parametrize("kwargs", [
        {},
        {"form": "relational"},
        {"backend": "zdd"},
        {"backend": "zdd", "form": "functional"},
        {"k_bound": 2},
    ])
    def test_default_specs_are_silent(self, kwargs):
        assert AnalysisSpec(**kwargs).warnings() == ()

    def test_warnings_are_structured_not_printed(self, capsys):
        # reorder=False no longer warns on zdd: the shared repro.dd
        # kernel made reordering real for the ZDD manager.
        spec = AnalysisSpec(backend="zdd", scheme="sparse",
                            reorder=False, simplify_frontier=True)
        warnings = spec.warnings()
        assert capsys.readouterr() == ("", "")
        assert all(isinstance(w, SpecWarning) for w in warnings)
        assert {w.option for w in warnings} == {
            "scheme", "simplify_frontier"}
        sparse = next(w for w in warnings if w.option == "scheme")
        assert sparse.value == "sparse"
        assert "element per place" in sparse.reason
        assert "scheme='sparse' ignored" in sparse.render()

    def test_strategy_warns_off_the_functional_path(self):
        spec = AnalysisSpec(form="relational", strategy="bfs",
                            chain_order="net")
        assert {w.option for w in spec.warnings()} == {"strategy",
                                                       "chain_order"}
        assert AnalysisSpec(strategy="bfs").warnings() == ()

    def test_monolithic_cluster_size_warns(self):
        spec = AnalysisSpec(form="relational", engine="monolithic",
                            cluster_size=4)
        assert [w.option for w in spec.warnings()] == ["cluster_size"]

    def test_k_bound_warns_on_inapplicable_options(self):
        spec = AnalysisSpec(k_bound=2, scheme="sparse", reorder=False,
                            simplify_frontier=True, strategy="bfs")
        assert {w.option for w in spec.warnings()} == {
            "scheme", "reorder", "simplify_frontier", "strategy"}


class TestPortfolioSpec:
    def test_resolved_members_default(self):
        spec = AnalysisSpec(backend="portfolio")
        assert spec.resolved_members == DEFAULT_PORTFOLIO_MEMBERS
        assert spec.resolved_form == "portfolio"
        assert spec.resolved_engine == "portfolio"
        assert spec.engine_id == "portfolio"
        assert spec.warnings() == ()

    def test_members_list_normalized_to_tuple(self):
        # from_dict hands back JSON lists; the frozen spec must still
        # hash and compare like its tuple-built twin.
        spec = AnalysisSpec(backend="portfolio",
                            portfolio_members=["zdd-chained",
                                               "bdd-chained"])
        assert spec.portfolio_members == ("zdd-chained", "bdd-chained")
        assert spec == AnalysisSpec(
            backend="portfolio",
            portfolio_members=("zdd-chained", "bdd-chained"))

    def test_error_messages_name_the_fix(self):
        with pytest.raises(SpecError, match="races its members"):
            AnalysisSpec(backend="portfolio", engine="chained")
        with pytest.raises(SpecError, match="unknown portfolio member"):
            AnalysisSpec(backend="portfolio",
                         portfolio_members=("sat-solver",))
        with pytest.raises(SpecError, match="worker processes"):
            AnalysisSpec(timeout=30.0)

    def test_one_member_portfolio_warns(self):
        spec = AnalysisSpec(backend="portfolio",
                            portfolio_members=("bdd-chained",))
        assert [w.option for w in spec.warnings()] == \
            ["portfolio_members"]

    def test_member_option_warnings_follow_the_roster(self):
        # scheme applies to the BDD members of the default roster: no
        # warning; on an all-ZDD/kbounded roster it is dead weight.
        assert AnalysisSpec(backend="portfolio",
                            scheme="sparse").warnings() == ()
        spec = AnalysisSpec(backend="portfolio", scheme="sparse",
                            portfolio_members=("zdd-chained",
                                               "kbounded"))
        assert "scheme" in {w.option for w in spec.warnings()}

    def test_k_bound_parameterizes_the_kbounded_member(self):
        assert AnalysisSpec(backend="portfolio",
                            k_bound=2).warnings() == ()
        spec = AnalysisSpec(backend="portfolio", k_bound=2,
                            portfolio_members=("bdd-chained",
                                               "zdd-chained"))
        assert "k_bound" in {w.option for w in spec.warnings()}

    def test_round_trip_with_members(self):
        import json
        spec = AnalysisSpec(backend="portfolio",
                            portfolio_members=("bdd-functional",
                                               "kbounded"),
                            timeout=120.0, member_timeout=30.0)
        payload = json.loads(json.dumps(spec.to_dict()))
        assert AnalysisSpec.from_dict(payload) == spec

    def test_from_args(self):
        args = _build_parser().parse_args(
            ["analyze", "--net", "phil", "--n", "3",
             "--backend", "portfolio",
             "--portfolio-members", "bdd-chained,zdd-chained",
             "--timeout", "60", "--member-timeout", "20"])
        spec = AnalysisSpec.from_args(args)
        assert spec == AnalysisSpec(
            backend="portfolio",
            portfolio_members=("bdd-chained", "zdd-chained"),
            timeout=60.0, member_timeout=20.0)

    def test_from_args_member_flags_need_portfolio_backend(self):
        args = _build_parser().parse_args(
            ["analyze", "x.pnet", "--portfolio-members", "bdd-chained"])
        with pytest.raises(SpecError):
            AnalysisSpec.from_args(args)


class TestSerialization:
    @pytest.mark.parametrize("spec", [
        AnalysisSpec(),
        AnalysisSpec(backend="zdd"),
        AnalysisSpec(form="relational", engine="partitioned",
                     cluster_size=2, simplify_frontier=True,
                     reorder=False),
        AnalysisSpec(k_bound=3, max_iterations=50),
    ])
    def test_round_trip(self, spec):
        import json
        payload = json.loads(json.dumps(spec.to_dict()))
        assert AnalysisSpec.from_dict(payload) == spec

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(SpecError, match="unknown spec fields"):
            AnalysisSpec.from_dict({"scheme": "improved", "speed": 11})

    def test_replace_revalidates(self):
        spec = AnalysisSpec(form="relational", cluster_size=2)
        assert spec.replace(cluster_size=8).cluster_size == 8
        with pytest.raises(SpecError):
            spec.replace(form="functional")


class TestFromArgs:
    def test_full_relational_namespace(self):
        args = _build_parser().parse_args(
            ["analyze", "x.pnet", "--scheme", "dense", "--image",
             "partitioned", "--cluster-size", "auto", "--no-reorder",
             "--simplify-frontier"])
        spec = AnalysisSpec.from_args(args)
        assert spec == AnalysisSpec(scheme="dense", form="relational",
                                    engine="partitioned",
                                    cluster_size="auto", reorder=False,
                                    simplify_frontier=True)

    def test_explicit_functional_image(self):
        args = _build_parser().parse_args(
            ["analyze", "x.pnet", "--engine", "zdd", "--image",
             "functional"])
        spec = AnalysisSpec.from_args(args)
        assert spec.engine_id == "zdd/classic"

    def test_k_bound_flag(self):
        args = _build_parser().parse_args(
            ["analyze", "x.pnet", "--k-bound", "4"])
        assert AnalysisSpec.from_args(args).k_bound == 4

    def test_invalid_combination_surfaces_as_spec_error(self):
        args = _build_parser().parse_args(
            ["analyze", "x.pnet", "--cluster-size", "4"])
        with pytest.raises(SpecError):
            AnalysisSpec.from_args(args)


class TestFieldClassification:
    """Every spec field is explicitly semantic or not — the one split
    both the checkpoint headers and the service cache key rely on.

    A new field added without classifying it fails the import-time
    check in :mod:`repro.analysis.spec`; a new field classified
    *wrongly* fails here, because this test enumerates the expected
    split by hand.
    """

    EXPECTED_SEMANTIC = {
        "scheme", "backend", "form", "engine", "cluster_size",
        "strategy", "chain_order", "use_toggle", "reorder",
        "reorder_threshold", "simplify_frontier", "k_bound",
        "portfolio_members",
    }
    EXPECTED_NONSEMANTIC = {
        "checkpoint_path", "checkpoint_every", "checkpoint_every_seconds",
        "resume", "node_budget", "deadline", "max_iterations",
        "timeout", "member_timeout", "workers",
    }

    def test_every_field_classified_exactly_once(self):
        import dataclasses

        from repro.analysis import NONSEMANTIC_FIELDS, SEMANTIC_FIELDS
        all_fields = {f.name for f in dataclasses.fields(AnalysisSpec)}
        assert set(SEMANTIC_FIELDS) == self.EXPECTED_SEMANTIC
        assert set(NONSEMANTIC_FIELDS) == self.EXPECTED_NONSEMANTIC
        assert set(SEMANTIC_FIELDS) | set(NONSEMANTIC_FIELDS) == all_fields
        assert not set(SEMANTIC_FIELDS) & set(NONSEMANTIC_FIELDS)

    def test_nonsemantic_fields_do_not_change_the_fingerprint(self):
        base = AnalysisSpec()
        varied = AnalysisSpec(
            checkpoint_path="/tmp/x.ckpt", checkpoint_every=7,
            checkpoint_every_seconds=1.5, resume=True,
            node_budget=10_000, deadline=3.0, max_iterations=5,
            workers=4, form="relational", engine="partitioned-mp")
        # Same semantics modulo the relational switch...
        rel = AnalysisSpec(form="relational", engine="partitioned-mp")
        assert varied.semantic_fingerprint() == rel.semantic_fingerprint()
        # ...and the durability knobs alone change nothing.
        assert base.semantic_fingerprint() == AnalysisSpec(
            resume=True, checkpoint_path="a.ckpt",
            max_iterations=9).semantic_fingerprint()
        assert base.semantic_fingerprint() != rel.semantic_fingerprint()

    def test_every_semantic_field_fractures_the_fingerprint(self):
        # Per-field valid spec pairs differing only in that field (some
        # values need supporting fields: relational engines need the
        # relational form, members the portfolio backend).
        pairs = {
            "scheme": (dict(), dict(scheme="sparse")),
            "backend": (dict(), dict(backend="zdd")),
            "form": (dict(), dict(form="relational")),
            "engine": (dict(form="relational"),
                       dict(form="relational", engine="partitioned")),
            "cluster_size": (dict(form="relational", engine="chained"),
                             dict(form="relational", engine="chained",
                                  cluster_size=3)),
            "strategy": (dict(), dict(strategy="bfs")),
            "chain_order": (dict(), dict(chain_order="net")),
            "use_toggle": (dict(), dict(use_toggle=False)),
            "reorder": (dict(), dict(reorder=False)),
            "reorder_threshold": (dict(), dict(reorder_threshold=999)),
            "simplify_frontier": (dict(), dict(simplify_frontier=True)),
            "k_bound": (dict(), dict(k_bound=3)),
            "portfolio_members": (
                dict(backend="portfolio"),
                dict(backend="portfolio",
                     portfolio_members=("bdd-functional",
                                        "zdd-chained"))),
        }
        from repro.analysis import SEMANTIC_FIELDS
        assert set(pairs) == set(SEMANTIC_FIELDS)
        for field, (left, right) in pairs.items():
            a = AnalysisSpec(**left).semantic_fingerprint()
            b = AnalysisSpec(**right).semantic_fingerprint()
            assert a != b, field

    def test_checkpoint_fingerprint_is_the_same_definition(self):
        from repro.analysis import spec_fingerprint
        spec = AnalysisSpec(backend="zdd")
        assert spec_fingerprint(spec) == spec.semantic_fingerprint()
