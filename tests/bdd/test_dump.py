"""Unit tests for Graphviz export."""

from repro.bdd import BDD, ZDD, variable
from repro.bdd.dump import bdd_to_dot, zdd_to_dot


class TestBddDot:
    def test_contains_all_nodes_and_edges(self):
        bdd = BDD(var_names=["a", "b"])
        f = variable(bdd, "a") & variable(bdd, "b")
        dot = bdd_to_dot(bdd, [("f", f.node)])
        assert dot.startswith("digraph bdd {")
        assert dot.rstrip().endswith("}")
        assert 'label="a"' in dot
        assert 'label="b"' in dot
        # One terminal node; the FALSE polarity is a complement arc.
        assert 'label="1"' in dot
        assert "style=dashed" in dot and "style=solid" in dot

    def test_complement_arcs_are_rendered(self):
        bdd = BDD(var_names=["a", "b"])
        f = variable(bdd, "a") & variable(bdd, "b")
        dot = bdd_to_dot(bdd, [("f", f.node), ("nf", (~f).node)])
        # Exactly one of the two root arcs carries the complement
        # decoration; complemented then arcs use the same convention.
        assert "arrowhead=odot" in dot
        assert 'label="~"' in dot

    def test_deterministic_output(self):
        def render():
            bdd = BDD(var_names=["a", "b", "c"])
            a, b, c = (variable(bdd, n) for n in "abc")
            f, g = (a & b) | c, a ^ c
            return bdd_to_dot(bdd, [("f", f.node), ("g", g.node)])

        assert render() == render()

    def test_multiple_roots_share_nodes(self):
        bdd = BDD(var_names=["a", "b"])
        a, b = variable(bdd, "a"), variable(bdd, "b")
        f, g = a & b, a | b
        dot = bdd_to_dot(bdd, [("f", f.node), ("g", g.node)])
        assert '"r_f"' in dot and '"r_g"' in dot
        # Shared variable nodes are emitted once.
        assert dot.count('label="b"') <= 2

    def test_terminal_root(self):
        from repro.bdd import ONE, ZERO
        bdd = BDD(var_names=["a"])
        dot = bdd_to_dot(bdd, [("t", ONE), ("f", ZERO)])
        assert 'label="1"' in dot
        # FALSE is the complemented root arc into the same terminal.
        assert "arrowhead=odot" in dot


class TestZddDot:
    def test_contains_structure(self):
        zdd = ZDD(var_names=["p", "q"])
        fam = zdd.from_sets([{"p"}, {"p", "q"}])
        dot = zdd_to_dot(zdd, [("fam", fam)])
        assert dot.startswith("digraph zdd {")
        assert 'label="p"' in dot
        assert 'label="q"' in dot

    def test_empty_family(self):
        zdd = ZDD(var_names=["p"])
        dot = zdd_to_dot(zdd, [("e", zdd.empty())])
        assert 'label="{}"' in dot
