"""Unit tests for the Function handle API."""

import pytest

from repro.bdd import BDD, BDDError, Function, cube, false, true, variable


@pytest.fixture
def setup():
    bdd = BDD(var_names=["a", "b", "c"])
    a, b, c = (variable(bdd, name) for name in "abc")
    return bdd, a, b, c


class TestOperators:
    def test_and_or_not(self, setup):
        bdd, a, b, c = setup
        f = (a & b) | ~c
        assert f({"a": 1, "b": 1, "c": 1})
        assert f({"a": 0, "b": 0, "c": 0})
        assert not f({"a": 1, "b": 0, "c": 1})

    def test_xor_and_difference(self, setup):
        bdd, a, b, c = setup
        assert (a ^ a).is_zero()
        assert (a - a).is_zero()
        assert (a - b)({"a": 1, "b": 0, "c": 0})

    def test_implies_and_iff(self, setup):
        bdd, a, b, c = setup
        assert a.implies(a).is_one()
        assert a.iff(a).is_one()
        assert (a.implies(b))({"a": 0, "b": 0, "c": 0})

    def test_ite(self, setup):
        bdd, a, b, c = setup
        f = a.ite(b, c)
        assert f({"a": 1, "b": 1, "c": 0})
        assert f({"a": 0, "b": 0, "c": 1})

    def test_equality_is_semantic(self, setup):
        bdd, a, b, c = setup
        assert (a & b) == (b & a)
        assert (a | b) != (a & b)
        assert hash(a & b) == hash(b & a)

    def test_bool_raises(self, setup):
        bdd, a, b, c = setup
        with pytest.raises(BDDError):
            bool(a)

    def test_mixed_types_rejected(self, setup):
        bdd, a, b, c = setup
        with pytest.raises(TypeError):
            a & 1


class TestConstants:
    def test_true_false(self, setup):
        bdd, a, b, c = setup
        assert true(bdd).is_one()
        assert false(bdd).is_zero()
        assert (a | ~a) == true(bdd)
        assert (a & ~a) == false(bdd)

    def test_cube_helper(self, setup):
        bdd, a, b, c = setup
        f = cube(bdd, {"a": True, "c": False})
        assert f == (a & ~c)


class TestQuantifiers:
    def test_exists_by_name_and_literal(self, setup):
        bdd, a, b, c = setup
        f = a & b
        assert f.exists(["a"]) == b
        assert f.exists([a]) == b

    def test_exists_literal_must_be_single_var(self, setup):
        bdd, a, b, c = setup
        with pytest.raises(BDDError):
            (a & b).exists([a & b])

    def test_forall(self, setup):
        bdd, a, b, c = setup
        assert (a | b).forall(["a"]) == b

    def test_and_exists(self, setup):
        bdd, a, b, c = setup
        f, g = a | b, b | c
        assert f.and_exists(g, ["b"]) == (f & g).exists(["b"])


class TestStructural:
    def test_cofactor(self, setup):
        bdd, a, b, c = setup
        assert (a & b).cofactor({"a": True}) == b

    def test_rename(self, setup):
        bdd, a, b, c = setup
        assert (a & b).rename({"a": "b", "b": "c"}) == (b & c)

    def test_toggle(self, setup):
        bdd, a, b, c = setup
        assert (a & b).toggle(["a"]) == (~a & b)

    def test_compose(self, setup):
        bdd, a, b, c = setup
        assert (a & b).compose("b", c | a) == (a & (c | a))

    def test_support_names(self, setup):
        bdd, a, b, c = setup
        assert (a & c).support_names() == frozenset({"a", "c"})

    def test_sat_one_names(self, setup):
        bdd, a, b, c = setup
        sat = (a & ~b).sat_one()
        assert sat == {"a": True, "b": False}
        assert false(bdd).sat_one() is None

    def test_iter_cubes_names(self, setup):
        bdd, a, b, c = setup
        cubes = list((a & ~b).iter_cubes())
        assert cubes == [{"a": True, "b": False}]

    def test_repr_mentions_vars(self, setup):
        bdd, a, b, c = setup
        assert "a" in repr(a)
        assert "TRUE" in repr(true(bdd))
        assert "FALSE" in repr(false(bdd))


class TestRefcounting:
    def test_handles_protect_nodes_across_gc(self):
        bdd = BDD(var_names=["a", "b", "c"])
        a, b, c = (variable(bdd, name) for name in "abc")
        f = (a & b) | c
        del a, b, c
        bdd.collect_garbage()
        assert f.satcount() == 5

    def test_del_releases_reference(self):
        bdd = BDD(var_names=["a", "b"])
        a, b = variable(bdd, "a"), variable(bdd, "b")
        f = a & b
        node = f.node >> 1  # the node behind the (possibly
        # complemented) edge carries the reference count
        ref_with_handle = bdd._ref[node]
        del f
        assert bdd._ref[node] == ref_with_handle - 1
