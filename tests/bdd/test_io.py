"""Unit tests for BDD serialization."""

import itertools

import pytest

from repro.bdd import BDD, BDDError, ZDD, ZDDError, variable
from repro.bdd.io import (dump_functions, dump_zdd_nodes, load_functions,
                          load_functions_file, load_zdd_nodes,
                          save_functions)


@pytest.fixture
def source():
    bdd = BDD(var_names=["a", "b", "c"])
    a, b, c = (variable(bdd, n) for n in "abc")
    return bdd, {"f": (a & b) | c, "g": a ^ c}


def eval_everywhere(func, names):
    return tuple(func(dict(zip(names, values)))
                 for values in itertools.product([False, True],
                                                 repeat=len(names)))


class TestRoundTrip:
    def test_same_order(self, source):
        bdd, funcs = source
        text = dump_functions(funcs)
        target = BDD(var_names=["a", "b", "c"])
        loaded = load_functions(text, target)
        for label in funcs:
            assert (eval_everywhere(loaded[label], ["a", "b", "c"])
                    == eval_everywhere(funcs[label], ["a", "b", "c"]))

    def test_different_target_order(self, source):
        bdd, funcs = source
        text = dump_functions(funcs)
        target = BDD(var_names=["c", "a", "b"])
        loaded = load_functions(text, target)
        for label in funcs:
            assert (eval_everywhere(loaded[label], ["a", "b", "c"])
                    == eval_everywhere(funcs[label], ["a", "b", "c"]))

    def test_constants(self):
        bdd = BDD(var_names=["a"])
        from repro.bdd import false, true
        text = dump_functions({"t": true(bdd), "f": false(bdd)})
        target = BDD(var_names=["a"])
        loaded = load_functions(text, target)
        assert loaded["t"].is_one()
        assert loaded["f"].is_zero()

    def test_file_round_trip(self, source, tmp_path):
        bdd, funcs = source
        path = tmp_path / "funcs.bdd"
        save_functions(funcs, path)
        target = BDD(var_names=["a", "b", "c"])
        loaded = load_functions_file(path, target)
        assert set(loaded) == {"f", "g"}

    def test_shared_structure_written_once(self, source):
        bdd, funcs = source
        text = dump_functions({"f": funcs["f"], "f2": funcs["f"]})
        assert text.count("root") == 2
        # Identical roots reuse the same node records.
        assert text.count("node") == funcs["f"].size() - 2

    def test_reachable_set_round_trip(self):
        """The practical use: persist a computed reachability set."""
        from repro.encoding import ImprovedEncoding
        from repro.petri.generators import figure4_net
        from repro.symbolic import SymbolicNet, traverse
        symnet = SymbolicNet(ImprovedEncoding(figure4_net()))
        reached = traverse(symnet).reachable
        text = dump_functions({"reachable": reached})
        target = BDD(var_names=list(symnet.encoding.variables))
        loaded = load_functions(text, target)["reachable"]
        assert loaded.satcount(symnet.encoding.num_variables) == 22


class TestErrors:
    def test_empty_dump_rejected(self):
        with pytest.raises(BDDError):
            dump_functions({})

    def test_mixed_managers_rejected(self):
        bdd1 = BDD(var_names=["a"])
        bdd2 = BDD(var_names=["a"])
        with pytest.raises(BDDError):
            dump_functions({"f": variable(bdd1, "a"),
                            "g": variable(bdd2, "a")})

    def test_label_with_space_rejected(self, source):
        bdd, funcs = source
        with pytest.raises(BDDError):
            dump_functions({"bad label": funcs["f"]})

    def test_bad_header(self):
        bdd = BDD(var_names=["a"])
        with pytest.raises(BDDError):
            load_functions("garbage", bdd)

    @pytest.mark.parametrize("text", ["", "   \n\t\n  "])
    def test_empty_stream_has_clear_structured_error(self, text):
        """An empty or whitespace-only dump (truncated ship, zero-byte
        file) must raise the structured format error naming the
        problem — never an IndexError/KeyError escape."""
        bdd = BDD(var_names=["a"])
        with pytest.raises(BDDError, match="empty bddio stream"):
            load_functions(text, bdd)

    @pytest.mark.parametrize("text", ["", "   \n\t\n  "])
    def test_empty_zdd_stream_has_clear_structured_error(self, text):
        zdd = ZDD(var_names=["a"])
        with pytest.raises(ZDDError, match="empty zddio stream"):
            load_zdd_nodes(text, zdd)

    def test_missing_variable_in_target(self, source):
        bdd, funcs = source
        text = dump_functions(funcs)
        target = BDD(var_names=["a", "b"])  # no c
        with pytest.raises(BDDError):
            load_functions(text, target)

    def test_forward_reference_rejected(self):
        bdd = BDD(var_names=["a"])
        text = "bddio 1\nvar a\nnode 2 a 3 1\nroot f 2\n"
        with pytest.raises(BDDError):
            load_functions(text, bdd)

    def test_no_roots_rejected(self):
        bdd = BDD(var_names=["a"])
        with pytest.raises(BDDError):
            load_functions("bddio 1\nvar a\n", bdd)

    def test_unknown_record_rejected(self):
        bdd = BDD(var_names=["a"])
        with pytest.raises(BDDError):
            load_functions("bddio 1\nfrob x\n", bdd)


class TestReorderedManagerReload:
    def test_reload_into_a_sifted_manager(self, source):
        """Satellite: dump, let dynamic reordering permute the target,
        reload — the rebuilt functions are semantically identical."""
        from repro.dd import sift
        bdd, funcs = source
        text = dump_functions(funcs)
        target = BDD(var_names=["a", "b", "c"])
        # Populate the target and sift it so its level permutation no
        # longer matches the dump's.
        junk = (variable(target, "c") & variable(target, "a")) \
            | variable(target, "b")
        sift(target)
        target.set_order(["b", "c", "a"])
        loaded = load_functions(text, target)
        for label in funcs:
            assert (eval_everywhere(loaded[label], ["a", "b", "c"])
                    == eval_everywhere(funcs[label], ["a", "b", "c"]))
        target.assert_consistent()

    def test_dump_from_a_reordered_source(self, source):
        bdd, funcs = source
        bdd.set_order(["c", "b", "a"])
        text = dump_functions(funcs)
        target = BDD(var_names=["a", "b", "c"])
        loaded = load_functions(text, target)
        for label in funcs:
            assert (eval_everywhere(loaded[label], ["a", "b", "c"])
                    == eval_everywhere(funcs[label], ["a", "b", "c"]))


class TestMalformedRecords:
    """Satellite: corrupt integer fields fail with a clear error."""

    GOOD = "bddio 1\nvar a\nnode 2 a 0 1\nroot f 2\n"

    def test_good_baseline_loads(self):
        bdd = BDD(var_names=["a"])
        loaded = load_functions(self.GOOD, bdd)["f"]
        assert eval_everywhere(loaded, ["a"]) == (False, True)

    @pytest.mark.parametrize("bad_line", [
        "node x a 0 1",       # non-integer node id
        "node 2 a zero 1",    # non-integer low child
        "node 2 a 0 one",     # non-integer high child
    ])
    def test_malformed_node_record(self, bad_line):
        bdd = BDD(var_names=["a"])
        text = self.GOOD.replace("node 2 a 0 1", bad_line)
        with pytest.raises(BDDError) as excinfo:
            load_functions(text, bdd)
        assert "malformed integer field" in str(excinfo.value)
        assert bad_line in str(excinfo.value)

    def test_malformed_root_record(self):
        bdd = BDD(var_names=["a"])
        text = self.GOOD.replace("root f 2", "root f two")
        with pytest.raises(BDDError) as excinfo:
            load_functions(text, bdd)
        assert "malformed integer field" in str(excinfo.value)

    def test_malformed_zdd_node_record(self):
        from repro.bdd import ZDD, ZDDError
        from repro.bdd.io import load_zdd_nodes
        zdd = ZDD(var_names=["e"])
        text = "zddio 1\nelem e\nnode 2 e 0 NaN\nroot s 2\n"
        with pytest.raises(ZDDError) as excinfo:
            load_zdd_nodes(text, zdd)
        assert "malformed integer field" in str(excinfo.value)


class TestZddRoundTrip:
    FAMILY = frozenset([
        frozenset(), frozenset(["a"]), frozenset(["a", "c"]),
        frozenset(["b", "c"]), frozenset(["a", "b", "c"])])

    def _zdd_with_family(self, names):
        from repro.bdd import ZDD
        zdd = ZDD(var_names=names)
        sets = frozenset(
            frozenset(zdd.var_index(n) for n in s) for s in self.FAMILY)
        return zdd, zdd.ref(zdd.from_sets(sets)), sets

    def _extract(self, zdd, node):
        names = zdd.order()
        return frozenset(frozenset(s) for s in zdd.iter_sets(node))

    def test_same_order(self):
        from repro.bdd import ZDD
        from repro.bdd.io import dump_zdd_nodes, load_zdd_nodes
        zdd, node, sets = self._zdd_with_family(["a", "b", "c"])
        text = dump_zdd_nodes(zdd, {"fam": node})
        target = ZDD(var_names=["a", "b", "c"])
        loaded = load_zdd_nodes(text, target)["fam"]
        target.ref(loaded)
        by_name = frozenset(
            frozenset(target.var_name(v) for v in s)
            for s in target.iter_sets(loaded))
        want = frozenset(
            frozenset(zdd.var_name(v) for v in s)
            for s in zdd.iter_sets(node))
        assert by_name == want

    def test_different_target_order(self):
        from repro.bdd import ZDD
        from repro.bdd.io import dump_zdd_nodes, load_zdd_nodes
        zdd, node, sets = self._zdd_with_family(["a", "b", "c"])
        text = dump_zdd_nodes(zdd, {"fam": node})
        target = ZDD(var_names=["c", "a", "b"])
        loaded = load_zdd_nodes(text, target)["fam"]
        target.ref(loaded)
        by_name = frozenset(
            frozenset(target.var_name(v) for v in s)
            for s in target.iter_sets(loaded))
        want = frozenset(
            frozenset(zdd.var_name(v) for v in s)
            for s in zdd.iter_sets(node))
        assert by_name == want
        target.assert_consistent()

    def test_zdd_header_rejected_by_bdd_loader(self):
        bdd = BDD(var_names=["a"])
        with pytest.raises(BDDError):
            load_functions("zddio 1\nelem a\nroot f 0\n", bdd)
