"""Unit tests for BDD serialization."""

import itertools
from pathlib import Path

import pytest

from repro.bdd import BDD, BDDError, ZDD, ZDDError, variable
from repro.bdd.io import (dump_functions, dump_zdd_nodes, load_functions,
                          load_functions_file, load_zdd_nodes,
                          save_functions)


@pytest.fixture
def source():
    bdd = BDD(var_names=["a", "b", "c"])
    a, b, c = (variable(bdd, n) for n in "abc")
    return bdd, {"f": (a & b) | c, "g": a ^ c}


def eval_everywhere(func, names):
    return tuple(func(dict(zip(names, values)))
                 for values in itertools.product([False, True],
                                                 repeat=len(names)))


class TestRoundTrip:
    def test_same_order(self, source):
        bdd, funcs = source
        text = dump_functions(funcs)
        target = BDD(var_names=["a", "b", "c"])
        loaded = load_functions(text, target)
        for label in funcs:
            assert (eval_everywhere(loaded[label], ["a", "b", "c"])
                    == eval_everywhere(funcs[label], ["a", "b", "c"]))

    def test_different_target_order(self, source):
        bdd, funcs = source
        text = dump_functions(funcs)
        target = BDD(var_names=["c", "a", "b"])
        loaded = load_functions(text, target)
        for label in funcs:
            assert (eval_everywhere(loaded[label], ["a", "b", "c"])
                    == eval_everywhere(funcs[label], ["a", "b", "c"]))

    def test_constants(self):
        bdd = BDD(var_names=["a"])
        from repro.bdd import false, true
        text = dump_functions({"t": true(bdd), "f": false(bdd)})
        target = BDD(var_names=["a"])
        loaded = load_functions(text, target)
        assert loaded["t"].is_one()
        assert loaded["f"].is_zero()

    def test_file_round_trip(self, source, tmp_path):
        bdd, funcs = source
        path = tmp_path / "funcs.bdd"
        save_functions(funcs, path)
        target = BDD(var_names=["a", "b", "c"])
        loaded = load_functions_file(path, target)
        assert set(loaded) == {"f", "g"}

    def test_shared_structure_written_once(self, source):
        bdd, funcs = source
        text = dump_functions({"f": funcs["f"], "f2": funcs["f"]})
        assert text.count("root") == 2
        # Identical roots reuse the same node records (size includes the
        # single terminal, which is not written as a node record).
        assert text.count("node") == funcs["f"].size() - 1

    def test_reachable_set_round_trip(self):
        """The practical use: persist a computed reachability set."""
        from repro.encoding import ImprovedEncoding
        from repro.petri.generators import figure4_net
        from repro.symbolic import SymbolicNet, traverse
        symnet = SymbolicNet(ImprovedEncoding(figure4_net()))
        reached = traverse(symnet).reachable
        text = dump_functions({"reachable": reached})
        target = BDD(var_names=list(symnet.encoding.variables))
        loaded = load_functions(text, target)["reachable"]
        assert loaded.satcount(symnet.encoding.num_variables) == 22


class TestErrors:
    def test_empty_dump_rejected(self):
        with pytest.raises(BDDError):
            dump_functions({})

    def test_mixed_managers_rejected(self):
        bdd1 = BDD(var_names=["a"])
        bdd2 = BDD(var_names=["a"])
        with pytest.raises(BDDError):
            dump_functions({"f": variable(bdd1, "a"),
                            "g": variable(bdd2, "a")})

    def test_label_with_space_rejected(self, source):
        bdd, funcs = source
        with pytest.raises(BDDError):
            dump_functions({"bad label": funcs["f"]})

    def test_bad_header(self):
        bdd = BDD(var_names=["a"])
        with pytest.raises(BDDError):
            load_functions("garbage", bdd)

    @pytest.mark.parametrize("text", ["", "   \n\t\n  "])
    def test_empty_stream_has_clear_structured_error(self, text):
        """An empty or whitespace-only dump (truncated ship, zero-byte
        file) must raise the structured format error naming the
        problem — never an IndexError/KeyError escape."""
        bdd = BDD(var_names=["a"])
        with pytest.raises(BDDError, match="empty bddio stream"):
            load_functions(text, bdd)

    @pytest.mark.parametrize("text", ["", "   \n\t\n  "])
    def test_empty_zdd_stream_has_clear_structured_error(self, text):
        zdd = ZDD(var_names=["a"])
        with pytest.raises(ZDDError, match="empty zddio stream"):
            load_zdd_nodes(text, zdd)

    def test_missing_variable_in_target(self, source):
        bdd, funcs = source
        text = dump_functions(funcs)
        target = BDD(var_names=["a", "b"])  # no c
        with pytest.raises(BDDError):
            load_functions(text, target)

    def test_forward_reference_rejected(self):
        bdd = BDD(var_names=["a"])
        text = "bddio 1\nvar a\nnode 2 a 3 1\nroot f 2\n"
        with pytest.raises(BDDError):
            load_functions(text, bdd)

    def test_no_roots_rejected(self):
        bdd = BDD(var_names=["a"])
        with pytest.raises(BDDError):
            load_functions("bddio 1\nvar a\n", bdd)

    def test_unknown_record_rejected(self):
        bdd = BDD(var_names=["a"])
        with pytest.raises(BDDError):
            load_functions("bddio 1\nfrob x\n", bdd)


class TestReorderedManagerReload:
    def test_reload_into_a_sifted_manager(self, source):
        """Satellite: dump, let dynamic reordering permute the target,
        reload — the rebuilt functions are semantically identical."""
        from repro.dd import sift
        bdd, funcs = source
        text = dump_functions(funcs)
        target = BDD(var_names=["a", "b", "c"])
        # Populate the target and sift it so its level permutation no
        # longer matches the dump's.
        junk = (variable(target, "c") & variable(target, "a")) \
            | variable(target, "b")
        sift(target)
        target.set_order(["b", "c", "a"])
        loaded = load_functions(text, target)
        for label in funcs:
            assert (eval_everywhere(loaded[label], ["a", "b", "c"])
                    == eval_everywhere(funcs[label], ["a", "b", "c"]))
        target.assert_consistent()

    def test_dump_from_a_reordered_source(self, source):
        bdd, funcs = source
        bdd.set_order(["c", "b", "a"])
        text = dump_functions(funcs)
        target = BDD(var_names=["a", "b", "c"])
        loaded = load_functions(text, target)
        for label in funcs:
            assert (eval_everywhere(loaded[label], ["a", "b", "c"])
                    == eval_everywhere(funcs[label], ["a", "b", "c"]))


class TestMalformedRecords:
    """Satellite: corrupt integer fields fail with a clear error."""

    GOOD = "bddio 1\nvar a\nnode 2 a 0 1\nroot f 2\n"

    def test_good_baseline_loads(self):
        bdd = BDD(var_names=["a"])
        loaded = load_functions(self.GOOD, bdd)["f"]
        assert eval_everywhere(loaded, ["a"]) == (False, True)

    @pytest.mark.parametrize("bad_line", [
        "node x a 0 1",       # non-integer node id
        "node 2 a zero 1",    # non-integer low child
        "node 2 a 0 one",     # non-integer high child
    ])
    def test_malformed_node_record(self, bad_line):
        bdd = BDD(var_names=["a"])
        text = self.GOOD.replace("node 2 a 0 1", bad_line)
        with pytest.raises(BDDError) as excinfo:
            load_functions(text, bdd)
        assert "malformed integer field" in str(excinfo.value)
        assert bad_line in str(excinfo.value)

    def test_malformed_root_record(self):
        bdd = BDD(var_names=["a"])
        text = self.GOOD.replace("root f 2", "root f two")
        with pytest.raises(BDDError) as excinfo:
            load_functions(text, bdd)
        assert "malformed integer field" in str(excinfo.value)

    def test_malformed_zdd_node_record(self):
        from repro.bdd import ZDD, ZDDError
        from repro.bdd.io import load_zdd_nodes
        zdd = ZDD(var_names=["e"])
        text = "zddio 1\nelem e\nnode 2 e 0 NaN\nroot s 2\n"
        with pytest.raises(ZDDError) as excinfo:
            load_zdd_nodes(text, zdd)
        assert "malformed integer field" in str(excinfo.value)


class TestWireFormatV2:
    """The complement-edge wire format: explicit bits, version pinning."""

    def test_dump_writes_v2_header(self, source):
        bdd, funcs = source
        text = dump_functions(funcs)
        assert text.startswith("bddio 2\n")

    def test_complemented_root_round_trips(self, source):
        bdd, funcs = source
        nf = ~funcs["f"]
        text = dump_functions({"f": funcs["f"], "nf": nf})
        target = BDD(var_names=["a", "b", "c"])
        loaded = load_functions(text, target)
        assert (eval_everywhere(loaded["nf"], ["a", "b", "c"])
                == eval_everywhere(nf, ["a", "b", "c"]))
        # The complement relationship survives the wire structurally.
        assert loaded["nf"].node == target.apply_not(loaded["f"].node)

    def test_v2_dump_structurally_identical_after_reload(self, source):
        bdd, funcs = source
        text = dump_functions(funcs)
        target = BDD(var_names=["a", "b", "c"])
        loaded = load_functions(text, target)
        assert dump_functions(loaded) == text

    GOOD_V2 = ("bddio 2\nvar a\nnode 2 a 1 1 1\nroot f 2 0\n")

    def test_good_v2_baseline_loads(self):
        bdd = BDD(var_names=["a"])
        loaded = load_functions(self.GOOD_V2, bdd)["f"]
        assert eval_everywhere(loaded, ["a"]) == (True, False)

    @pytest.mark.parametrize("bad, message", [
        ("node 2 a 1 1 x", "non-boolean complement bit"),
        ("node 2 a 1 1 2", "out-of-range complement bit"),
        ("node 2 a 1 1 -1", "out-of-range complement bit"),
    ])
    def test_bad_node_complement_bit(self, bad, message):
        bdd = BDD(var_names=["a"])
        text = self.GOOD_V2.replace("node 2 a 1 1 1", bad)
        with pytest.raises(BDDError, match=message):
            load_functions(text, bdd)

    @pytest.mark.parametrize("bad, message", [
        ("root f 2 yes", "non-boolean complement bit"),
        ("root f 2 7", "out-of-range complement bit"),
    ])
    def test_bad_root_complement_bit(self, bad, message):
        bdd = BDD(var_names=["a"])
        text = self.GOOD_V2.replace("root f 2 0", bad)
        with pytest.raises(BDDError, match=message):
            load_functions(text, bdd)

    def test_v2_stream_rejected_by_v1_only_peer(self, source):
        """A peer that only speaks v1 must fail structurally on a v2
        dump, not misparse the extra fields."""
        bdd, funcs = source
        text = dump_functions(funcs)
        target = BDD(var_names=["a", "b", "c"])
        with pytest.raises(BDDError, match="version mismatch.*v2.*v1"):
            load_functions(text, target, require_version=1)

    def test_v1_stream_rejected_by_v2_only_peer(self):
        bdd = BDD(var_names=["a"])
        text = "bddio 1\nvar a\nnode 2 a 0 1\nroot f 2\n"
        with pytest.raises(BDDError, match="version mismatch.*v1.*v2"):
            load_functions(text, bdd, require_version=2)

    def test_unknown_future_version_rejected(self):
        bdd = BDD(var_names=["a"])
        with pytest.raises(BDDError, match="unsupported bddio version 3"):
            load_functions("bddio 3\nvar a\nroot f 1 0\n", bdd)

    def test_v2_node_line_with_v1_field_count_rejected(self):
        """A v2 node record missing its complement bit (e.g. a v1 writer
        stamped the wrong header) is malformed, not silently guessed."""
        bdd = BDD(var_names=["a"])
        with pytest.raises(BDDError, match="malformed node line"):
            load_functions("bddio 2\nvar a\nnode 2 a 1 1\nroot f 2 0\n",
                           bdd)

    def test_truncation_at_every_byte_boundary(self, source):
        """Chopping a v2 dump at any byte yields either a structured
        BDDError or a correct prefix of the roots — never a bare
        parser exception and never a wrong function."""
        bdd, funcs = source
        text = dump_functions(funcs)
        names = ["a", "b", "c"]
        want = {label: eval_everywhere(func, names)
                for label, func in funcs.items()}
        for cut in range(len(text)):
            target = BDD(var_names=names)
            try:
                loaded = load_functions(text[:cut], target)
            except BDDError:
                continue
            assert set(loaded) <= set(want)
            for label, func in loaded.items():
                assert eval_everywhere(func, names) == want[label]


class TestV1FixtureCompat:
    """The committed pre-complement dump must stay loadable forever."""

    FIXTURE = Path(__file__).parent / "fixtures" / "phil4_reachable_v1.bddio"

    def _target(self, text):
        var_line = next(line for line in text.splitlines()
                        if line.startswith("var "))
        return BDD(var_names=var_line.split()[1:])

    def test_fixture_is_a_v1_stream(self):
        assert self.FIXTURE.read_text().startswith("bddio 1\n")

    def test_fixture_loads_through_the_v2_reader(self):
        text = self.FIXTURE.read_text()
        target = self._target(text)
        reachable = load_functions(text, target)["reachable"]
        assert reachable.satcount(target.num_vars) == 466

    def test_fixture_round_trips_into_v2(self):
        """Load the v1 dump, re-dump (v2), reload: same function."""
        text = self.FIXTURE.read_text()
        target = self._target(text)
        reachable = load_functions(text, target)["reachable"]
        v2_text = dump_functions({"reachable": reachable})
        assert v2_text.startswith("bddio 2\n")
        fresh = self._target(text)
        again = load_functions(v2_text, fresh,
                               require_version=2)["reachable"]
        assert again.satcount(fresh.num_vars) == 466


class TestZddRoundTrip:
    FAMILY = frozenset([
        frozenset(), frozenset(["a"]), frozenset(["a", "c"]),
        frozenset(["b", "c"]), frozenset(["a", "b", "c"])])

    def _zdd_with_family(self, names):
        from repro.bdd import ZDD
        zdd = ZDD(var_names=names)
        sets = frozenset(
            frozenset(zdd.var_index(n) for n in s) for s in self.FAMILY)
        return zdd, zdd.ref(zdd.from_sets(sets)), sets

    def _extract(self, zdd, node):
        names = zdd.order()
        return frozenset(frozenset(s) for s in zdd.iter_sets(node))

    def test_same_order(self):
        from repro.bdd import ZDD
        from repro.bdd.io import dump_zdd_nodes, load_zdd_nodes
        zdd, node, sets = self._zdd_with_family(["a", "b", "c"])
        text = dump_zdd_nodes(zdd, {"fam": node})
        target = ZDD(var_names=["a", "b", "c"])
        loaded = load_zdd_nodes(text, target)["fam"]
        target.ref(loaded)
        by_name = frozenset(
            frozenset(target.var_name(v) for v in s)
            for s in target.iter_sets(loaded))
        want = frozenset(
            frozenset(zdd.var_name(v) for v in s)
            for s in zdd.iter_sets(node))
        assert by_name == want

    def test_different_target_order(self):
        from repro.bdd import ZDD
        from repro.bdd.io import dump_zdd_nodes, load_zdd_nodes
        zdd, node, sets = self._zdd_with_family(["a", "b", "c"])
        text = dump_zdd_nodes(zdd, {"fam": node})
        target = ZDD(var_names=["c", "a", "b"])
        loaded = load_zdd_nodes(text, target)["fam"]
        target.ref(loaded)
        by_name = frozenset(
            frozenset(target.var_name(v) for v in s)
            for s in target.iter_sets(loaded))
        want = frozenset(
            frozenset(zdd.var_name(v) for v in s)
            for s in zdd.iter_sets(node))
        assert by_name == want
        target.assert_consistent()

    def test_zdd_header_rejected_by_bdd_loader(self):
        bdd = BDD(var_names=["a"])
        with pytest.raises(BDDError):
            load_functions("zddio 1\nelem a\nroot f 0\n", bdd)
