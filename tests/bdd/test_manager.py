"""Unit tests for the BDD manager (node level)."""

import itertools

import pytest

from repro.bdd import BDD, BDDError, ONE, ZERO


@pytest.fixture
def bdd():
    return BDD(var_names=["a", "b", "c", "d"])


def assignments(names):
    for values in itertools.product([False, True], repeat=len(names)):
        yield dict(zip(names, values))


class TestVariables:
    def test_add_var_returns_consecutive_indices(self):
        bdd = BDD()
        assert bdd.add_var("x") == 0
        assert bdd.add_var("y") == 1
        assert bdd.num_vars == 2

    def test_default_names(self):
        bdd = BDD()
        var = bdd.add_var()
        assert bdd.var_name(var) == "x0"

    def test_duplicate_name_rejected(self):
        bdd = BDD(var_names=["x"])
        with pytest.raises(BDDError):
            bdd.add_var("x")

    def test_var_index_by_name_and_int(self, bdd):
        assert bdd.var_index("c") == 2
        assert bdd.var_index(2) == 2

    def test_unknown_name_raises(self, bdd):
        with pytest.raises(BDDError):
            bdd.var_index("nope")

    def test_out_of_range_index_raises(self, bdd):
        with pytest.raises(BDDError):
            bdd.var_index(17)

    def test_initial_order_is_declaration_order(self, bdd):
        assert bdd.order() == ["a", "b", "c", "d"]
        assert bdd.level_of_var("a") == 0
        assert bdd.var_at_level(3) == bdd.var_index("d")


class TestMk:
    def test_terminals_are_fixed(self, bdd):
        # One shared terminal node (id 1) in two polarities: ONE is the
        # regular edge, ZERO its complement.
        assert ONE == 2
        assert ZERO == 3
        assert ZERO == ONE ^ 1
        assert ONE >> 1 == ZERO >> 1 == 1

    def test_redundant_node_collapses(self, bdd):
        u = bdd._mk(0, ONE, ONE)
        assert u == ONE

    def test_hash_consing(self, bdd):
        u = bdd._mk(0, ZERO, ONE)
        v = bdd._mk(0, ZERO, ONE)
        assert u == v

    def test_var_node_and_negation(self, bdd):
        a = bdd.var_node("a")
        na = bdd.nvar_node("a")
        assert bdd.apply_not(a) == na
        assert bdd.apply_not(na) == a


class TestConnectives:
    def test_and_truth_table(self, bdd):
        a, b = bdd.var_node("a"), bdd.var_node("b")
        f = bdd.apply_and(a, b)
        for env in assignments(["a", "b", "c", "d"]):
            assert bdd.eval_node(f, env) == (env["a"] and env["b"])

    def test_or_truth_table(self, bdd):
        a, b = bdd.var_node("a"), bdd.var_node("b")
        f = bdd.apply_or(a, b)
        for env in assignments(["a", "b", "c", "d"]):
            assert bdd.eval_node(f, env) == (env["a"] or env["b"])

    def test_xor_truth_table(self, bdd):
        a, b = bdd.var_node("a"), bdd.var_node("b")
        f = bdd.apply_xor(a, b)
        for env in assignments(["a", "b", "c", "d"]):
            assert bdd.eval_node(f, env) == (env["a"] != env["b"])

    def test_diff(self, bdd):
        a, b = bdd.var_node("a"), bdd.var_node("b")
        f = bdd.apply_diff(a, b)
        for env in assignments(["a", "b", "c", "d"]):
            assert bdd.eval_node(f, env) == (env["a"] and not env["b"])

    def test_not_involution(self, bdd):
        a, b = bdd.var_node("a"), bdd.var_node("b")
        f = bdd.apply_or(a, bdd.apply_not(b))
        assert bdd.apply_not(bdd.apply_not(f)) == f

    def test_and_constants(self, bdd):
        a = bdd.var_node("a")
        assert bdd.apply_and(a, ZERO) == ZERO
        assert bdd.apply_and(a, ONE) == a
        assert bdd.apply_and(ZERO, a) == ZERO
        assert bdd.apply_and(a, a) == a

    def test_or_constants(self, bdd):
        a = bdd.var_node("a")
        assert bdd.apply_or(a, ONE) == ONE
        assert bdd.apply_or(a, ZERO) == a
        assert bdd.apply_or(a, a) == a

    def test_xor_self_is_zero(self, bdd):
        a = bdd.var_node("a")
        assert bdd.apply_xor(a, a) == ZERO

    def test_canonical_commutativity(self, bdd):
        a, b, c = (bdd.var_node(n) for n in "abc")
        lhs = bdd.apply_and(bdd.apply_or(a, b), c)
        rhs = bdd.apply_and(c, bdd.apply_or(b, a))
        assert lhs == rhs


class TestIte:
    def test_ite_matches_definition(self, bdd):
        a, b, c = (bdd.var_node(n) for n in "abc")
        f = bdd.ite(a, b, c)
        for env in assignments(["a", "b", "c", "d"]):
            expected = env["b"] if env["a"] else env["c"]
            assert bdd.eval_node(f, env) == expected

    def test_ite_shortcuts(self, bdd):
        a, b = bdd.var_node("a"), bdd.var_node("b")
        assert bdd.ite(ONE, a, b) == a
        assert bdd.ite(ZERO, a, b) == b
        assert bdd.ite(a, ONE, ZERO) == a
        assert bdd.ite(a, ZERO, ONE) == bdd.apply_not(a)
        assert bdd.ite(a, b, b) == b

    def test_ite_equals_composition(self, bdd):
        a, b, c = (bdd.var_node(n) for n in "abc")
        via_ite = bdd.ite(a, b, c)
        manual = bdd.apply_or(bdd.apply_and(a, b),
                              bdd.apply_and(bdd.apply_not(a), c))
        assert via_ite == manual


class TestQuantification:
    def test_exists_removes_variable(self, bdd):
        a, b = bdd.var_node("a"), bdd.var_node("b")
        f = bdd.apply_and(a, b)
        g = bdd.exists(f, ["a"])
        assert g == b
        assert bdd.var_index("a") not in bdd.support(g)

    def test_exists_of_contradiction(self, bdd):
        a = bdd.var_node("a")
        f = bdd.apply_and(a, bdd.apply_not(a))
        assert bdd.exists(f, ["a"]) == ZERO

    def test_exists_multiple_vars(self, bdd):
        a, b, c = (bdd.var_node(n) for n in "abc")
        f = bdd.apply_and(bdd.apply_and(a, b), c)
        assert bdd.exists(f, ["a", "b", "c"]) == ONE

    def test_exists_no_vars_is_identity(self, bdd):
        a = bdd.var_node("a")
        assert bdd.exists(a, []) == a

    def test_forall(self, bdd):
        a, b = bdd.var_node("a"), bdd.var_node("b")
        f = bdd.apply_or(a, b)
        assert bdd.forall(f, ["a"]) == b
        assert bdd.forall(f, ["a", "b"]) == ZERO
        assert bdd.forall(ONE, ["a"]) == ONE

    def test_and_exists_equals_two_steps(self, bdd):
        a, b, c, d = (bdd.var_node(n) for n in "abcd")
        f = bdd.apply_or(bdd.apply_and(a, b), c)
        g = bdd.apply_or(bdd.apply_and(b, d), a)
        combined = bdd.and_exists(f, g, ["b"])
        two_step = bdd.exists(bdd.apply_and(f, g), ["b"])
        assert combined == two_step

    def test_and_exists_terminal_cases(self, bdd):
        a = bdd.var_node("a")
        assert bdd.and_exists(ZERO, a, ["a"]) == ZERO
        assert bdd.and_exists(ONE, ONE, ["a"]) == ONE
        assert bdd.and_exists(a, ONE, ["a"]) == ONE


class TestCofactorRenameToggle:
    def test_cofactor_positive(self, bdd):
        a, b = bdd.var_node("a"), bdd.var_node("b")
        f = bdd.apply_and(a, b)
        assert bdd.cofactor(f, {"a": True}) == b
        assert bdd.cofactor(f, {"a": False}) == ZERO

    def test_cofactor_multiple(self, bdd):
        a, b, c = (bdd.var_node(n) for n in "abc")
        f = bdd.apply_or(bdd.apply_and(a, b), c)
        g = bdd.cofactor(f, {"a": True, "c": False})
        assert g == b

    def test_cofactor_empty_assignment(self, bdd):
        a = bdd.var_node("a")
        assert bdd.cofactor(a, {}) == a

    def test_cube(self, bdd):
        cube = bdd.cube({"a": True, "b": False})
        for env in assignments(["a", "b", "c", "d"]):
            assert bdd.eval_node(cube, env) == (env["a"] and not env["b"])

    def test_rename_monotone(self, bdd):
        a, b = bdd.var_node("a"), bdd.var_node("b")
        f = bdd.apply_and(a, b)
        g = bdd.rename(f, {"a": "c", "b": "d"})
        c, d = bdd.var_node("c"), bdd.var_node("d")
        assert g == bdd.apply_and(c, d)

    def test_rename_rejects_non_monotone(self, bdd):
        a, b = bdd.var_node("a"), bdd.var_node("b")
        f = bdd.apply_and(a, bdd.apply_not(b))
        with pytest.raises(BDDError):
            bdd.rename(f, {"a": "d", "b": "c"})

    def test_rename_identity(self, bdd):
        a = bdd.var_node("a")
        assert bdd.rename(a, {}) == a

    def test_toggle_single(self, bdd):
        a, b = bdd.var_node("a"), bdd.var_node("b")
        f = bdd.apply_and(a, b)
        g = bdd.toggle(f, ["a"])
        for env in assignments(["a", "b", "c", "d"]):
            flipped = dict(env)
            flipped["a"] = not flipped["a"]
            assert bdd.eval_node(g, env) == bdd.eval_node(f, flipped)

    def test_toggle_involution(self, bdd):
        a, b, c = (bdd.var_node(n) for n in "abc")
        f = bdd.apply_or(bdd.apply_and(a, b), c)
        assert bdd.toggle(bdd.toggle(f, ["a", "c"]), ["a", "c"]) == f

    def test_compose(self, bdd):
        a, b, c = (bdd.var_node(n) for n in "abc")
        f = bdd.apply_and(a, b)
        g = bdd.compose(f, "b", c)
        assert g == bdd.apply_and(a, c)


class TestInspection:
    def test_support(self, bdd):
        a, c = bdd.var_node("a"), bdd.var_node("c")
        f = bdd.apply_and(a, c)
        assert bdd.support(f) == frozenset(
            {bdd.var_index("a"), bdd.var_index("c")})

    def test_support_of_terminal_is_empty(self, bdd):
        assert bdd.support(ONE) == frozenset()
        assert bdd.support(ZERO) == frozenset()

    def test_satcount_basic(self, bdd):
        a, b = bdd.var_node("a"), bdd.var_node("b")
        assert bdd.satcount(bdd.apply_and(a, b)) == 4  # over 4 vars
        assert bdd.satcount(bdd.apply_or(a, b)) == 12
        assert bdd.satcount(ONE) == 16
        assert bdd.satcount(ZERO) == 0

    def test_satcount_custom_width(self, bdd):
        a = bdd.var_node("a")
        assert bdd.satcount(a, nvars=1) == 1
        assert bdd.satcount(a, nvars=2) == 2

    def test_satcount_rejects_too_few_vars(self, bdd):
        a, b = bdd.var_node("a"), bdd.var_node("b")
        f = bdd.apply_and(a, b)
        with pytest.raises(BDDError):
            bdd.satcount(f, nvars=1)

    def test_sat_one(self, bdd):
        a, b = bdd.var_node("a"), bdd.var_node("b")
        f = bdd.apply_and(a, bdd.apply_not(b))
        cube = bdd.sat_one(f)
        assert cube[bdd.var_index("a")] is True
        assert cube[bdd.var_index("b")] is False
        assert bdd.sat_one(ZERO) is None
        assert bdd.sat_one(ONE) == {}

    def test_iter_cubes_cover_function(self, bdd):
        a, b, c = (bdd.var_node(n) for n in "abc")
        f = bdd.apply_or(bdd.apply_and(a, b), c)
        cubes = list(bdd.iter_cubes(f))
        assert cubes
        for cube in cubes:
            env = {v: False for v in range(4)}
            env.update(cube)
            assert bdd.eval_node(f, env)

    def test_iter_minterms_count_matches_satcount(self, bdd):
        a, b = bdd.var_node("a"), bdd.var_node("b")
        f = bdd.apply_or(a, b)
        minterms = list(bdd.iter_minterms(f))
        assert len(minterms) == bdd.satcount(f)

    def test_size(self, bdd):
        a, b = bdd.var_node("a"), bdd.var_node("b")
        f = bdd.apply_and(a, b)
        assert bdd.size(f) == 3  # two internal nodes + one terminal
        assert bdd.size(ONE) == 1
        assert bdd.size(ZERO) == 1  # both polarities share the terminal

    def test_size_many_shares_nodes(self, bdd):
        a, b = bdd.var_node("a"), bdd.var_node("b")
        f = bdd.apply_and(a, b)
        g = bdd.apply_or(a, b)
        assert bdd.size_many([f, g]) <= bdd.size(f) + bdd.size(g)


class TestGarbageCollection:
    def test_unreferenced_nodes_are_freed(self):
        bdd = BDD(var_names=["a", "b", "c"])
        a, b, c = (bdd.var_node(n) for n in "abc")
        f = bdd.apply_and(bdd.apply_or(a, b), c)
        bdd.ref(f)
        before = bdd.live_nodes()
        bdd.apply_xor(bdd.apply_and(a, c), b)  # garbage
        assert bdd.live_nodes() > before
        bdd.collect_garbage()
        # f and its cone must survive.
        assert bdd.eval_node(f, {"a": True, "b": False, "c": True})
        bdd.assert_consistent()

    def test_referenced_node_survives_gc(self):
        bdd = BDD(var_names=["a", "b"])
        f = bdd.apply_and(bdd.var_node("a"), bdd.var_node("b"))
        bdd.ref(f)
        bdd.collect_garbage()
        assert bdd.satcount(f) == 1

    def test_deref_underflow_raises(self):
        bdd = BDD(var_names=["a"])
        f = bdd.var_node("a")
        bdd.ref(f)
        bdd.deref(f)
        with pytest.raises(BDDError):
            bdd.deref(f)

    def test_freed_slots_are_reused(self):
        bdd = BDD(var_names=["a", "b", "c"])
        a, b, c = (bdd.var_node(n) for n in "abc")
        bdd.ref(a), bdd.ref(b), bdd.ref(c)
        bdd.apply_and(bdd.apply_or(a, b), c)
        bdd.collect_garbage()
        free_before = len(bdd._free)
        assert free_before > 0
        bdd.apply_and(a, b)
        assert len(bdd._free) < free_before

    def test_gc_returns_freed_count(self):
        bdd = BDD(var_names=["a", "b", "c"])
        a, b, c = (bdd.var_node(n) for n in "abc")
        bdd.ref(a), bdd.ref(b), bdd.ref(c)
        bdd.apply_and(bdd.apply_and(a, b), c)
        assert bdd.collect_garbage() > 0
