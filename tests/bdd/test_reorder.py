"""Unit tests for adjacent-level swap and sifting."""

import itertools

import pytest

from repro.bdd import BDD, BDDError, sift, sift_to_convergence, variable
from repro.bdd.reorder import random_order


def build_interleaved_adder(bdd, a_names, b_names):
    """The classic order-sensitive function: sum-of-products a_i & b_i."""
    f = None
    for a_name, b_name in zip(a_names, b_names):
        term = variable(bdd, a_name) & variable(bdd, b_name)
        f = term if f is None else (f | term)
    return f


def eval_everywhere(func, names):
    return tuple(func(dict(zip(names, values)))
                 for values in itertools.product([False, True],
                                                 repeat=len(names)))


class TestSwapLevels:
    def test_swap_preserves_semantics(self):
        bdd = BDD(var_names=["a", "b", "c"])
        a, b, c = (variable(bdd, name) for name in "abc")
        f = (a & b) | (~a & c)
        names = ["a", "b", "c"]
        before = eval_everywhere(f, names)
        bdd.swap_levels(0)
        assert bdd.order() == ["b", "a", "c"]
        assert eval_everywhere(f, names) == before
        bdd.assert_consistent()

    def test_swap_back_restores_order(self):
        bdd = BDD(var_names=["a", "b", "c"])
        a, b, c = (variable(bdd, name) for name in "abc")
        f = a.ite(b, c)
        bdd.swap_levels(1)
        bdd.swap_levels(1)
        assert bdd.order() == ["a", "b", "c"]
        assert f({"a": 1, "b": 1, "c": 0})
        bdd.assert_consistent()

    def test_swap_out_of_range_raises(self):
        bdd = BDD(var_names=["a", "b"])
        with pytest.raises(BDDError):
            bdd.swap_levels(1)
        with pytest.raises(BDDError):
            bdd.swap_levels(-1)

    def test_swap_with_shared_nodes(self):
        bdd = BDD(var_names=["a", "b", "c", "d"])
        a, b, c, d = (variable(bdd, name) for name in "abcd")
        f = (a & b) | (c & d)
        g = (a | b) & (c | d)
        names = ["a", "b", "c", "d"]
        expected_f = eval_everywhere(f, names)
        expected_g = eval_everywhere(g, names)
        for level in (0, 1, 2, 1, 0):
            bdd.swap_levels(level)
            bdd.assert_consistent()
        assert eval_everywhere(f, names) == expected_f
        assert eval_everywhere(g, names) == expected_g

    def test_node_ids_stable_across_swap(self):
        bdd = BDD(var_names=["a", "b"])
        a, b = variable(bdd, "a"), variable(bdd, "b")
        f = a & b
        node_before = f.node
        bdd.swap_levels(0)
        assert f.node == node_before
        assert f({"a": 1, "b": 1})


class TestSetOrder:
    def test_set_order_permutes(self):
        bdd = BDD(var_names=["a", "b", "c", "d"])
        f = build_interleaved_adder(bdd, ["a", "b"], ["c", "d"])
        names = ["a", "b", "c", "d"]
        before = eval_everywhere(f, names)
        bdd.set_order(["d", "c", "b", "a"])
        assert bdd.order() == ["d", "c", "b", "a"]
        assert eval_everywhere(f, names) == before
        bdd.assert_consistent()

    def test_set_order_requires_permutation(self):
        bdd = BDD(var_names=["a", "b"])
        with pytest.raises(BDDError):
            bdd.set_order(["a", "a"])

    def test_interleaving_shrinks_adder(self):
        """With blocks [a0..a3][b0..b3] the product-of-sums is exponential;
        interleaved it is linear — the classic reordering benefit."""
        names_a = [f"a{i}" for i in range(4)]
        names_b = [f"b{i}" for i in range(4)]
        bdd = BDD(var_names=names_a + names_b)
        f = build_interleaved_adder(bdd, names_a, names_b)
        blocked_size = f.size()
        interleaved = [name for pair in zip(names_a, names_b) for name in pair]
        bdd.set_order(interleaved)
        assert f.size() < blocked_size


class TestSifting:
    def test_sift_preserves_semantics(self):
        names_a = [f"a{i}" for i in range(3)]
        names_b = [f"b{i}" for i in range(3)]
        bdd = BDD(var_names=names_a + names_b)
        f = build_interleaved_adder(bdd, names_a, names_b)
        names = names_a + names_b
        before = eval_everywhere(f, names)
        sift(bdd)
        assert eval_everywhere(f, names) == before
        bdd.assert_consistent()

    def test_sift_finds_small_order_for_adder(self):
        names_a = [f"a{i}" for i in range(5)]
        names_b = [f"b{i}" for i in range(5)]
        bdd = BDD(var_names=names_a + names_b)
        f = build_interleaved_adder(bdd, names_a, names_b)
        blocked_size = f.size()
        sift_to_convergence(bdd)
        # Optimal interleaved size is 3n + 2 nodes; sifting should get there
        # or very close, far below the exponential blocked order.
        assert f.size() <= blocked_size // 2
        assert f.size() <= 3 * 5 + 2 + 4

    def test_sift_on_empty_manager(self):
        bdd = BDD()
        assert sift(bdd) == 2

    def test_sift_single_variable(self):
        bdd = BDD(var_names=["a"])
        f = variable(bdd, "a")
        assert sift(bdd) >= 2
        assert f({"a": True})

    def test_random_order_is_deterministic(self):
        bdd = BDD(var_names=[f"v{i}" for i in range(6)])
        assert random_order(bdd, seed=3) == random_order(bdd, seed=3)
        assert sorted(random_order(bdd, seed=3)) == list(range(6))


class TestAutoReorder:
    def test_checkpoint_triggers_reorder(self):
        names_a = [f"a{i}" for i in range(5)]
        names_b = [f"b{i}" for i in range(5)]
        bdd = BDD(var_names=names_a + names_b, auto_reorder=True,
                  reorder_threshold=8)
        f = build_interleaved_adder(bdd, names_a, names_b)
        bdd.checkpoint()
        assert bdd.reorder_count == 1
        assert f({name: True for name in names_a + names_b})
        bdd.assert_consistent()

    def test_checkpoint_below_threshold_does_nothing(self):
        bdd = BDD(var_names=["a"], auto_reorder=True,
                  reorder_threshold=1000)
        bdd.checkpoint()
        assert bdd.reorder_count == 0

    def test_reorder_hook_called(self):
        calls = []
        bdd = BDD(var_names=["a", "b", "c", "d"], auto_reorder=True,
                  reorder_threshold=2)
        bdd.reorder_hooks.append(lambda mgr: calls.append(mgr.order()))
        f = (variable(bdd, "a") & variable(bdd, "b")) | variable(bdd, "c")
        bdd.checkpoint()
        assert calls


class TestReorderHooks:
    def test_hook_fires_once_per_sift_pass(self):
        names = [f"v{i}" for i in range(6)]
        bdd = BDD(var_names=names)
        f = build_interleaved_adder(bdd, names[:3], names[3:])
        calls = []
        bdd.add_reorder_hook(lambda mgr: calls.append(mgr.order()))
        sift(bdd)
        assert len(calls) == 1
        assert calls[0] == bdd.order()

    def test_hook_fires_after_swap_and_set_order(self):
        bdd = BDD(var_names=["a", "b", "c"])
        calls = []
        bdd.add_reorder_hook(lambda mgr: calls.append(mgr.order()))
        bdd.swap_levels(0)
        assert calls == [["b", "a", "c"]]
        bdd.set_order(["c", "a", "b"])
        assert len(calls) == 2
        assert calls[-1] == ["c", "a", "b"]

    def test_remove_hook(self):
        bdd = BDD(var_names=["a", "b"])
        calls = []
        hook = lambda mgr: calls.append(1)  # noqa: E731
        bdd.add_reorder_hook(hook)
        bdd.swap_levels(0)
        bdd.remove_reorder_hook(hook)
        bdd.swap_levels(0)
        assert len(calls) == 1

    def test_deferred_notifications_batch(self):
        bdd = BDD(var_names=["a", "b", "c"])
        calls = []
        bdd.add_reorder_hook(lambda mgr: calls.append(mgr.order()))
        with bdd.deferred_reorder_notifications():
            bdd.swap_levels(0)
            bdd.swap_levels(1)
            assert calls == []
        assert len(calls) == 1


class TestGroupSifting:
    def pairs(self, bdd, names):
        return [(bdd.var_index(a), bdd.var_index(b))
                for a, b in zip(names[0::2], names[1::2])]

    def test_groups_stay_adjacent_and_ordered(self):
        names = [f"v{i}" for i in range(8)]
        bdd = BDD(var_names=names)
        f = build_interleaved_adder(bdd, names[0::2], names[1::2])
        groups = self.pairs(bdd, names)
        before = eval_everywhere(f, names)
        sift(bdd, groups=groups)
        for upper, lower in groups:
            assert bdd.level_of_var(lower) == bdd.level_of_var(upper) + 1
        assert eval_everywhere(f, names) == before
        bdd.assert_consistent()

    def test_group_sift_improves_blocked_adder(self):
        """Pairs (a_i, b_i) start scattered a0..a3 b0..b3; group sifting
        must still find the small interleaved-pairs order."""
        names_a = [f"a{i}" for i in range(4)]
        names_b = [f"b{i}" for i in range(4)]
        bdd = BDD(var_names=names_a + names_b)
        f = build_interleaved_adder(bdd, names_a, names_b)
        blocked = f.size()
        groups = [(bdd.var_index(a), bdd.var_index(b))
                  for a, b in zip(names_a, names_b)]
        sift(bdd, groups=groups)
        assert f.size() < blocked
        for upper, lower in groups:
            assert abs(bdd.level_of_var(lower)
                       - bdd.level_of_var(upper)) == 1
        bdd.assert_consistent()

    def test_scattered_groups_are_gathered(self):
        from repro.bdd.reorder import _normalize_blocks
        bdd = BDD(var_names=[f"v{i}" for i in range(6)])
        bdd.set_order([f"v{i}" for i in (0, 2, 4, 1, 3, 5)])
        blocks = _normalize_blocks(bdd, [(0, 1), (2, 3), (4, 5)])
        for members in blocks:
            levels = sorted(bdd.level_of_var(v) for v in members)
            assert levels == list(range(levels[0],
                                        levels[0] + len(members)))
        bdd.assert_consistent()

    def test_overlapping_groups_rejected(self):
        bdd = BDD(var_names=["a", "b", "c"])
        with pytest.raises(ValueError):
            sift(bdd, groups=[(0, 1), (1, 2)])
        with pytest.raises(ValueError):
            sift(bdd, groups=[(0, 0, 1)])

    def test_checkpoint_uses_sift_groups(self):
        names = [f"v{i}" for i in range(6)]
        bdd = BDD(var_names=names, auto_reorder=True, reorder_threshold=4)
        f = build_interleaved_adder(bdd, names[0::2], names[1::2])
        bdd.sift_groups = self.pairs(bdd, names)
        bdd.checkpoint()
        assert bdd.reorder_count == 1
        for upper, lower in bdd.sift_groups:
            assert bdd.level_of_var(lower) == bdd.level_of_var(upper) + 1
        assert f({name: True for name in names})
