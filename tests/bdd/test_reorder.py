"""Unit tests for adjacent-level swap and sifting."""

import itertools

import pytest

from repro.bdd import BDD, BDDError, sift, sift_to_convergence, variable
from repro.bdd.reorder import random_order


def build_interleaved_adder(bdd, a_names, b_names):
    """The classic order-sensitive function: sum-of-products a_i & b_i."""
    f = None
    for a_name, b_name in zip(a_names, b_names):
        term = variable(bdd, a_name) & variable(bdd, b_name)
        f = term if f is None else (f | term)
    return f


def eval_everywhere(func, names):
    return tuple(func(dict(zip(names, values)))
                 for values in itertools.product([False, True],
                                                 repeat=len(names)))


class TestSwapLevels:
    def test_swap_preserves_semantics(self):
        bdd = BDD(var_names=["a", "b", "c"])
        a, b, c = (variable(bdd, name) for name in "abc")
        f = (a & b) | (~a & c)
        names = ["a", "b", "c"]
        before = eval_everywhere(f, names)
        bdd.swap_levels(0)
        assert bdd.order() == ["b", "a", "c"]
        assert eval_everywhere(f, names) == before
        bdd.assert_consistent()

    def test_swap_back_restores_order(self):
        bdd = BDD(var_names=["a", "b", "c"])
        a, b, c = (variable(bdd, name) for name in "abc")
        f = a.ite(b, c)
        bdd.swap_levels(1)
        bdd.swap_levels(1)
        assert bdd.order() == ["a", "b", "c"]
        assert f({"a": 1, "b": 1, "c": 0})
        bdd.assert_consistent()

    def test_swap_out_of_range_raises(self):
        bdd = BDD(var_names=["a", "b"])
        with pytest.raises(BDDError):
            bdd.swap_levels(1)
        with pytest.raises(BDDError):
            bdd.swap_levels(-1)

    def test_swap_with_shared_nodes(self):
        bdd = BDD(var_names=["a", "b", "c", "d"])
        a, b, c, d = (variable(bdd, name) for name in "abcd")
        f = (a & b) | (c & d)
        g = (a | b) & (c | d)
        names = ["a", "b", "c", "d"]
        expected_f = eval_everywhere(f, names)
        expected_g = eval_everywhere(g, names)
        for level in (0, 1, 2, 1, 0):
            bdd.swap_levels(level)
            bdd.assert_consistent()
        assert eval_everywhere(f, names) == expected_f
        assert eval_everywhere(g, names) == expected_g

    def test_node_ids_stable_across_swap(self):
        bdd = BDD(var_names=["a", "b"])
        a, b = variable(bdd, "a"), variable(bdd, "b")
        f = a & b
        node_before = f.node
        bdd.swap_levels(0)
        assert f.node == node_before
        assert f({"a": 1, "b": 1})


class TestSetOrder:
    def test_set_order_permutes(self):
        bdd = BDD(var_names=["a", "b", "c", "d"])
        f = build_interleaved_adder(bdd, ["a", "b"], ["c", "d"])
        names = ["a", "b", "c", "d"]
        before = eval_everywhere(f, names)
        bdd.set_order(["d", "c", "b", "a"])
        assert bdd.order() == ["d", "c", "b", "a"]
        assert eval_everywhere(f, names) == before
        bdd.assert_consistent()

    def test_set_order_requires_permutation(self):
        bdd = BDD(var_names=["a", "b"])
        with pytest.raises(BDDError):
            bdd.set_order(["a", "a"])

    def test_interleaving_shrinks_adder(self):
        """With blocks [a0..a3][b0..b3] the product-of-sums is exponential;
        interleaved it is linear — the classic reordering benefit."""
        names_a = [f"a{i}" for i in range(4)]
        names_b = [f"b{i}" for i in range(4)]
        bdd = BDD(var_names=names_a + names_b)
        f = build_interleaved_adder(bdd, names_a, names_b)
        blocked_size = f.size()
        interleaved = [name for pair in zip(names_a, names_b) for name in pair]
        bdd.set_order(interleaved)
        assert f.size() < blocked_size


class TestSifting:
    def test_sift_preserves_semantics(self):
        names_a = [f"a{i}" for i in range(3)]
        names_b = [f"b{i}" for i in range(3)]
        bdd = BDD(var_names=names_a + names_b)
        f = build_interleaved_adder(bdd, names_a, names_b)
        names = names_a + names_b
        before = eval_everywhere(f, names)
        sift(bdd)
        assert eval_everywhere(f, names) == before
        bdd.assert_consistent()

    def test_sift_finds_small_order_for_adder(self):
        names_a = [f"a{i}" for i in range(5)]
        names_b = [f"b{i}" for i in range(5)]
        bdd = BDD(var_names=names_a + names_b)
        f = build_interleaved_adder(bdd, names_a, names_b)
        blocked_size = f.size()
        sift_to_convergence(bdd)
        # Optimal interleaved size is 3n + 2 nodes; sifting should get there
        # or very close, far below the exponential blocked order.
        assert f.size() <= blocked_size // 2
        assert f.size() <= 3 * 5 + 2 + 4

    def test_sift_on_empty_manager(self):
        bdd = BDD()
        assert sift(bdd) == 2

    def test_sift_single_variable(self):
        bdd = BDD(var_names=["a"])
        f = variable(bdd, "a")
        assert sift(bdd) >= 2
        assert f({"a": True})

    def test_random_order_is_deterministic(self):
        bdd = BDD(var_names=[f"v{i}" for i in range(6)])
        assert random_order(bdd, seed=3) == random_order(bdd, seed=3)
        assert sorted(random_order(bdd, seed=3)) == list(range(6))


class TestAutoReorder:
    def test_checkpoint_triggers_reorder(self):
        names_a = [f"a{i}" for i in range(5)]
        names_b = [f"b{i}" for i in range(5)]
        bdd = BDD(var_names=names_a + names_b, auto_reorder=True,
                  reorder_threshold=8)
        f = build_interleaved_adder(bdd, names_a, names_b)
        bdd.checkpoint()
        assert bdd.reorder_count == 1
        assert f({name: True for name in names_a + names_b})
        bdd.assert_consistent()

    def test_checkpoint_below_threshold_does_nothing(self):
        bdd = BDD(var_names=["a"], auto_reorder=True,
                  reorder_threshold=1000)
        bdd.checkpoint()
        assert bdd.reorder_count == 0

    def test_reorder_hook_called(self):
        calls = []
        bdd = BDD(var_names=["a", "b", "c", "d"], auto_reorder=True,
                  reorder_threshold=2)
        bdd.reorder_hooks.append(lambda mgr: calls.append(mgr.order()))
        f = (variable(bdd, "a") & variable(bdd, "b")) | variable(bdd, "c")
        bdd.checkpoint()
        assert calls
