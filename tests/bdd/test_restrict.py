"""Unit tests for the Coudert-Madre generalized cofactor."""

import itertools

import pytest

from repro.bdd import BDD, BDDError, variable


@pytest.fixture
def setup():
    bdd = BDD(var_names=["a", "b", "c", "d"])
    a, b, c, d = (variable(bdd, n) for n in "abcd")
    return bdd, a, b, c, d


def envs(names):
    for values in itertools.product([False, True], repeat=len(names)):
        yield dict(zip(names, values))


class TestRestrict:
    def test_agrees_on_care_set(self, setup):
        bdd, a, b, c, d = setup
        f = (a & b) | (c ^ d)
        care = a | b
        r = f.restrict(care)
        for env in envs("abcd"):
            if care(env):
                assert r(env) == f(env)

    def test_constant_care_is_identity(self, setup):
        bdd, a, b, c, d = setup
        f = a & ~b
        from repro.bdd import true
        assert f.restrict(true(bdd)) == f

    def test_empty_care_rejected(self, setup):
        bdd, a, b, c, d = setup
        from repro.bdd import false
        with pytest.raises(BDDError):
            (a & b).restrict(false(bdd))

    def test_classic_simplification(self, setup):
        """Restricting to a cube cofactors the function."""
        bdd, a, b, c, d = setup
        f = (a & b) | c
        r = f.restrict(a & b)
        assert r.is_one()

    def test_result_not_larger_in_typical_cases(self, setup):
        bdd, a, b, c, d = setup
        f = (a & b & c) | (~a & b & d) | (a & ~b & ~d)
        care = a
        assert f.restrict(care).size() <= f.size()

    def test_terminal_inputs(self, setup):
        bdd, a, b, c, d = setup
        from repro.bdd import false, true
        assert true(bdd).restrict(a) == true(bdd)
        assert false(bdd).restrict(a) == false(bdd)

    def test_idempotent(self, setup):
        """restrict only reads f on the care set, so a second restriction
        against the same care set is a no-op."""
        bdd, a, b, c, d = setup
        f = (a & b) | (c ^ d) | (~a & d)
        for care in (a | b, a & ~c, b ^ d):
            r = f.restrict(care)
            assert r.restrict(care) == r

    def test_frontier_simplification_shape(self, setup):
        """The traversal usage: simplifying a frontier against
        ``frontier | ~reached`` keeps exactly the new states' images."""
        bdd, a, b, c, d = setup
        reached = (a & b) | (a & c)
        frontier = a & c & ~b
        care = frontier | ~reached
        simplified = frontier.restrict(care)
        # Agreement on the care set is what traversal correctness needs:
        # off-care states are already reached, their successors are safe.
        assert (simplified & care) == (frontier & care)
        assert (simplified - reached) == (frontier - reached)
