"""Unit tests for the ZDD manager."""

import pytest

from repro.bdd import BASE, EMPTY, ZDD, ZDDError


@pytest.fixture
def zdd():
    return ZDD(var_names=["p", "q", "r", "s"])


def family(zdd, node):
    return set(zdd.to_name_sets(node))


class TestConstruction:
    def test_terminals(self, zdd):
        assert zdd.empty() == EMPTY
        assert zdd.base() == BASE
        assert family(zdd, EMPTY) == set()
        assert family(zdd, BASE) == {frozenset()}

    def test_singleton(self, zdd):
        f = zdd.singleton(["p", "r"])
        assert family(zdd, f) == {frozenset({"p", "r"})}

    def test_singleton_empty_set(self, zdd):
        assert zdd.singleton([]) == BASE

    def test_from_sets_roundtrip(self, zdd):
        sets = [set(), {"p"}, {"q", "r"}, {"p", "q", "r", "s"}]
        f = zdd.from_sets(sets)
        assert family(zdd, f) == {frozenset(s) for s in sets}
        assert zdd.count(f) == 4

    def test_duplicate_sets_collapse(self, zdd):
        f = zdd.from_sets([{"p"}, {"p"}])
        assert zdd.count(f) == 1

    def test_duplicate_name_rejected(self):
        zdd = ZDD(var_names=["p"])
        with pytest.raises(ZDDError):
            zdd.add_var("p")

    def test_unknown_element_raises(self, zdd):
        with pytest.raises(ZDDError):
            zdd.singleton(["nope"])


class TestAlgebra:
    def test_union(self, zdd):
        f = zdd.from_sets([{"p"}, {"q"}])
        g = zdd.from_sets([{"q"}, {"r"}])
        assert family(zdd, zdd.union(f, g)) == {
            frozenset({"p"}), frozenset({"q"}), frozenset({"r"})}

    def test_intersect(self, zdd):
        f = zdd.from_sets([{"p"}, {"q"}])
        g = zdd.from_sets([{"q"}, {"r"}])
        assert family(zdd, zdd.intersect(f, g)) == {frozenset({"q"})}

    def test_diff(self, zdd):
        f = zdd.from_sets([{"p"}, {"q"}])
        g = zdd.from_sets([{"q"}, {"r"}])
        assert family(zdd, zdd.diff(f, g)) == {frozenset({"p"})}

    def test_union_identity_laws(self, zdd):
        f = zdd.from_sets([{"p", "q"}])
        assert zdd.union(f, EMPTY) == f
        assert zdd.union(EMPTY, f) == f
        assert zdd.union(f, f) == f

    def test_intersect_annihilator(self, zdd):
        f = zdd.from_sets([{"p", "q"}])
        assert zdd.intersect(f, EMPTY) == EMPTY
        assert zdd.intersect(f, f) == f

    def test_diff_laws(self, zdd):
        f = zdd.from_sets([{"p"}, {"q", "r"}])
        assert zdd.diff(f, f) == EMPTY
        assert zdd.diff(f, EMPTY) == f
        assert zdd.diff(EMPTY, f) == EMPTY

    def test_canonicity(self, zdd):
        f = zdd.from_sets([{"p"}, {"q"}, {"p", "q"}])
        g = zdd.union(zdd.union(zdd.singleton(["q"]), zdd.singleton(["p"])),
                      zdd.singleton(["p", "q"]))
        assert f == g


class TestElementOps:
    def test_subset1(self, zdd):
        f = zdd.from_sets([{"p", "q"}, {"q"}, {"r"}])
        s = zdd.subset1(f, "q")
        assert family(zdd, s) == {frozenset({"p"}), frozenset()}

    def test_subset0(self, zdd):
        f = zdd.from_sets([{"p", "q"}, {"q"}, {"r"}])
        s = zdd.subset0(f, "q")
        assert family(zdd, s) == {frozenset({"r"})}

    def test_subset_partition(self, zdd):
        """subset0 + (change . subset1) partitions any family."""
        f = zdd.from_sets([set(), {"p"}, {"p", "s"}, {"q", "r"}])
        with_p = zdd.change(zdd.subset1(f, "p"), "p")
        without_p = zdd.subset0(f, "p")
        assert zdd.union(with_p, without_p) == f
        assert zdd.intersect(with_p, without_p) == EMPTY

    def test_change_adds_and_removes(self, zdd):
        f = zdd.from_sets([{"p"}, {"q"}])
        g = zdd.change(f, "p")
        assert family(zdd, g) == {frozenset(), frozenset({"p", "q"})}

    def test_change_involution(self, zdd):
        f = zdd.from_sets([{"p", "r"}, {"s"}, set()])
        assert zdd.change(zdd.change(f, "q"), "q") == f

    def test_contains(self, zdd):
        f = zdd.from_sets([{"p", "q"}, {"r"}])
        assert zdd.contains(f, ["p", "q"])
        assert zdd.contains(f, ["r"])
        assert not zdd.contains(f, ["p"])
        assert not zdd.contains(f, [])

    def test_contains_empty_set(self, zdd):
        f = zdd.from_sets([set(), {"p"}])
        assert zdd.contains(f, [])


class TestEnumeration:
    def test_iter_sets_and_to_sets_agree_on_indices(self, zdd):
        """Regression: ``to_sets`` used to return element *names* while
        its own iterator yielded *indices*.  Both now consistently speak
        indices; the name view has its own pair of methods."""
        f = zdd.from_sets([{"p"}, {"q", "s"}])
        listed = zdd.to_sets(f)
        iterated = list(zdd.iter_sets(f))
        assert listed == iterated
        assert set(listed) == {frozenset({0}), frozenset({1, 3})}
        for members in listed:
            assert all(isinstance(e, int) for e in members)

    def test_name_sets_mirror_index_sets(self, zdd):
        f = zdd.from_sets([{"p"}, {"q", "s"}])
        named = zdd.to_name_sets(f)
        assert named == list(zdd.iter_name_sets(f))
        assert set(named) == {frozenset({"p"}), frozenset({"q", "s"})}
        for members in named:
            assert all(isinstance(e, str) for e in members)
        by_translation = [frozenset(zdd.var_name(e) for e in members)
                          for members in zdd.iter_sets(f)]
        assert by_translation == named


class TestRelationalCore:
    def test_product_joins_families(self, zdd):
        f = zdd.from_sets([{"p"}, {"q"}])
        g = zdd.from_sets([{"r"}, set()])
        assert family(zdd, zdd.product(f, g)) == {
            frozenset({"p", "r"}), frozenset({"p"}),
            frozenset({"q", "r"}), frozenset({"q"})}

    def test_product_identities(self, zdd):
        f = zdd.from_sets([{"p", "q"}])
        from repro.bdd import BASE, EMPTY
        assert zdd.product(f, BASE) == f
        assert zdd.product(BASE, f) == f
        assert zdd.product(f, EMPTY) == EMPTY

    def test_exists_removes_and_merges(self, zdd):
        f = zdd.from_sets([{"p", "q"}, {"q"}, {"p"}])
        assert family(zdd, zdd.exists(f, ["p"])) == {
            frozenset({"q"}), frozenset()}

    def test_exists_no_vars_is_identity(self, zdd):
        f = zdd.from_sets([{"p", "q"}])
        assert zdd.exists(f, []) == f

    def test_project_keeps_only_subset(self, zdd):
        f = zdd.from_sets([{"p", "q"}, {"r", "s"}])
        assert family(zdd, zdd.project(f, ["p", "r"])) == {
            frozenset({"p"}), frozenset({"r"})}

    def test_supset_requires_all(self, zdd):
        f = zdd.from_sets([{"p", "q"}, {"q"}, {"q", "r"}])
        assert family(zdd, zdd.supset(f, ["q"])) == {
            frozenset({"p", "q"}), frozenset({"q"}),
            frozenset({"q", "r"})}
        assert family(zdd, zdd.supset(f, ["p", "q"])) == {
            frozenset({"p", "q"})}
        assert family(zdd, zdd.supset(f, [])) == family(zdd, f)

    def test_rename_monotone_shift(self, zdd):
        f = zdd.from_sets([{"p", "q"}, {"q"}])
        shifted = zdd.rename(f, {"p": "q", "q": "r"})
        assert family(zdd, shifted) == {
            frozenset({"q", "r"}), frozenset({"r"})}

    def test_rename_collision_collapses_by_set_semantics(self, zdd):
        # {p, q} with q -> p collapses to {p}; {q} maps to {p} too.
        f = zdd.from_sets([{"p", "q"}, {"q"}])
        renamed = zdd.rename(f, {"q": "p"})
        assert family(zdd, renamed) == {frozenset({"p"})}

    def test_rename_rejects_non_monotone_maps(self, zdd):
        from repro.bdd import ZDDError
        f = zdd.singleton(["p", "r"])
        with pytest.raises(ZDDError):
            zdd.rename(f, {"p": "s", "r": "q"})

    def test_and_exists_counters_and_cache(self, zdd):
        f = zdd.from_sets([{"p", "q"}, {"q", "r"}])
        g = zdd.from_sets([{"s"}, {"r", "s"}])
        first = zdd.and_exists(f, g, ["q"])
        assert first == zdd.exists(zdd.product(f, g), ["q"])
        assert zdd.ae_calls > 0 and zdd.ae_recursions > 0
        before = zdd.ae_cache_hits
        assert zdd.and_exists(f, g, ["q"]) == first
        assert zdd.ae_cache_hits > before
        zdd.clear_cache()
        assert not zdd._ae_cache

    def test_and_exists_empty_quantifier_degenerates_to_product(self, zdd):
        f = zdd.from_sets([{"p"}, {"q"}])
        g = zdd.from_sets([{"r"}])
        assert zdd.and_exists(f, g, []) == zdd.product(f, g)


class TestCounts:
    def test_count(self, zdd):
        f = zdd.from_sets([set(), {"p"}, {"p", "q"}, {"s"}])
        assert zdd.count(f) == 4
        assert zdd.count(EMPTY) == 0
        assert zdd.count(BASE) == 1

    def test_size_is_compact_for_sparse_families(self, zdd):
        # A single big set costs one node per present element.
        f = zdd.singleton(["p", "q", "r", "s"])
        assert zdd.size(f) == 6  # 4 element nodes + both terminals

    def test_zero_suppression(self, zdd):
        """Nodes with empty high branch must never exist."""
        f = zdd._mk(0, BASE, EMPTY)
        assert f == BASE
