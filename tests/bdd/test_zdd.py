"""Unit tests for the ZDD manager."""

import pytest

from repro.bdd import BASE, EMPTY, ZDD, ZDDError


@pytest.fixture
def zdd():
    return ZDD(var_names=["p", "q", "r", "s"])


def family(zdd, node):
    return set(zdd.to_sets(node))


class TestConstruction:
    def test_terminals(self, zdd):
        assert zdd.empty() == EMPTY
        assert zdd.base() == BASE
        assert family(zdd, EMPTY) == set()
        assert family(zdd, BASE) == {frozenset()}

    def test_singleton(self, zdd):
        f = zdd.singleton(["p", "r"])
        assert family(zdd, f) == {frozenset({"p", "r"})}

    def test_singleton_empty_set(self, zdd):
        assert zdd.singleton([]) == BASE

    def test_from_sets_roundtrip(self, zdd):
        sets = [set(), {"p"}, {"q", "r"}, {"p", "q", "r", "s"}]
        f = zdd.from_sets(sets)
        assert family(zdd, f) == {frozenset(s) for s in sets}
        assert zdd.count(f) == 4

    def test_duplicate_sets_collapse(self, zdd):
        f = zdd.from_sets([{"p"}, {"p"}])
        assert zdd.count(f) == 1

    def test_duplicate_name_rejected(self):
        zdd = ZDD(var_names=["p"])
        with pytest.raises(ZDDError):
            zdd.add_var("p")

    def test_unknown_element_raises(self, zdd):
        with pytest.raises(ZDDError):
            zdd.singleton(["nope"])


class TestAlgebra:
    def test_union(self, zdd):
        f = zdd.from_sets([{"p"}, {"q"}])
        g = zdd.from_sets([{"q"}, {"r"}])
        assert family(zdd, zdd.union(f, g)) == {
            frozenset({"p"}), frozenset({"q"}), frozenset({"r"})}

    def test_intersect(self, zdd):
        f = zdd.from_sets([{"p"}, {"q"}])
        g = zdd.from_sets([{"q"}, {"r"}])
        assert family(zdd, zdd.intersect(f, g)) == {frozenset({"q"})}

    def test_diff(self, zdd):
        f = zdd.from_sets([{"p"}, {"q"}])
        g = zdd.from_sets([{"q"}, {"r"}])
        assert family(zdd, zdd.diff(f, g)) == {frozenset({"p"})}

    def test_union_identity_laws(self, zdd):
        f = zdd.from_sets([{"p", "q"}])
        assert zdd.union(f, EMPTY) == f
        assert zdd.union(EMPTY, f) == f
        assert zdd.union(f, f) == f

    def test_intersect_annihilator(self, zdd):
        f = zdd.from_sets([{"p", "q"}])
        assert zdd.intersect(f, EMPTY) == EMPTY
        assert zdd.intersect(f, f) == f

    def test_diff_laws(self, zdd):
        f = zdd.from_sets([{"p"}, {"q", "r"}])
        assert zdd.diff(f, f) == EMPTY
        assert zdd.diff(f, EMPTY) == f
        assert zdd.diff(EMPTY, f) == EMPTY

    def test_canonicity(self, zdd):
        f = zdd.from_sets([{"p"}, {"q"}, {"p", "q"}])
        g = zdd.union(zdd.union(zdd.singleton(["q"]), zdd.singleton(["p"])),
                      zdd.singleton(["p", "q"]))
        assert f == g


class TestElementOps:
    def test_subset1(self, zdd):
        f = zdd.from_sets([{"p", "q"}, {"q"}, {"r"}])
        s = zdd.subset1(f, "q")
        assert family(zdd, s) == {frozenset({"p"}), frozenset()}

    def test_subset0(self, zdd):
        f = zdd.from_sets([{"p", "q"}, {"q"}, {"r"}])
        s = zdd.subset0(f, "q")
        assert family(zdd, s) == {frozenset({"r"})}

    def test_subset_partition(self, zdd):
        """subset0 + (change . subset1) partitions any family."""
        f = zdd.from_sets([set(), {"p"}, {"p", "s"}, {"q", "r"}])
        with_p = zdd.change(zdd.subset1(f, "p"), "p")
        without_p = zdd.subset0(f, "p")
        assert zdd.union(with_p, without_p) == f
        assert zdd.intersect(with_p, without_p) == EMPTY

    def test_change_adds_and_removes(self, zdd):
        f = zdd.from_sets([{"p"}, {"q"}])
        g = zdd.change(f, "p")
        assert family(zdd, g) == {frozenset(), frozenset({"p", "q"})}

    def test_change_involution(self, zdd):
        f = zdd.from_sets([{"p", "r"}, {"s"}, set()])
        assert zdd.change(zdd.change(f, "q"), "q") == f

    def test_contains(self, zdd):
        f = zdd.from_sets([{"p", "q"}, {"r"}])
        assert zdd.contains(f, ["p", "q"])
        assert zdd.contains(f, ["r"])
        assert not zdd.contains(f, ["p"])
        assert not zdd.contains(f, [])

    def test_contains_empty_set(self, zdd):
        f = zdd.from_sets([set(), {"p"}])
        assert zdd.contains(f, [])


class TestCounts:
    def test_count(self, zdd):
        f = zdd.from_sets([set(), {"p"}, {"p", "q"}, {"s"}])
        assert zdd.count(f) == 4
        assert zdd.count(EMPTY) == 0
        assert zdd.count(BASE) == 1

    def test_size_is_compact_for_sparse_families(self, zdd):
        # A single big set costs one node per present element.
        f = zdd.singleton(["p", "q", "r", "s"])
        assert zdd.size(f) == 6  # 4 element nodes + both terminals

    def test_zero_suppression(self, zdd):
        """Nodes with empty high branch must never exist."""
        f = zdd._mk(0, BASE, EMPTY)
        assert f == BASE
