"""Shared net and oracle fixtures for the whole test suite.

The generator nets and their explicit reachable-marking counts were
historically rebuilt ad hoc per test module (``test_traversal``,
``test_image_engines``, ``test_zdd_traversal`` each carried its own
``FAMILIES`` list and ``explicit_counts`` fixture, re-enumerating the
same state spaces).  They live here now:

* ``NET_FACTORIES`` — every small generator instance the suite uses,
  keyed by a short name; test modules parametrize over the *names* and
  build nets through the ``make_net`` fixture.
* ``explicit_counts`` — session-scoped, lazily enumerated explicit
  reachability counts (the oracle each symbolic engine is checked
  against); each state space is enumerated at most once per session.

The ``slow`` marker (registered in ``pytest.ini``) excludes the large
differential-harness configurations from tier-1; run them with
``-m slow``.
"""

import pytest

from repro.petri import ReachabilityGraph
from repro.petri.generators import (dme_circuit, dme_spec, figure1_net,
                                    figure4_net, jj_register, muller,
                                    philosophers, slotted_ring)

NET_FACTORIES = {
    "figure1": figure1_net,
    "figure4": figure4_net,
    "muller3": lambda: muller(3),
    "muller4": lambda: muller(4),
    "muller5": lambda: muller(5),
    "slot2": lambda: slotted_ring(2),
    "slot3": lambda: slotted_ring(3),
    "slot4": lambda: slotted_ring(4),
    "phil3": lambda: philosophers(3),
    "phil4": lambda: philosophers(4),
    "phil6": lambda: philosophers(6),
    "dme2": lambda: dme_spec(2),
    "dme3": lambda: dme_spec(3),
    "dmecir2": lambda: dme_circuit(2, wire_depth=2),
    "jjreg-a2": lambda: jj_register("a", bits=2),
    "jjreg-b2": lambda: jj_register("b", bits=2),
    "jjreg-a3": lambda: jj_register("a", bits=3),
}

# Enough for every instance above; muller5 tops out around 30k markings.
MAX_MARKINGS = 200_000


@pytest.fixture(scope="session")
def make_net():
    """Factory fixture: ``make_net("phil3")`` builds a fresh net."""

    def make(name):
        return NET_FACTORIES[name]()

    return make


class _ExplicitCounts:
    """Lazy per-session cache of explicit reachable-marking counts."""

    def __init__(self):
        self._cache = {}

    def __getitem__(self, name):
        count = self._cache.get(name)
        if count is None:
            net = NET_FACTORIES[name]()
            count = len(ReachabilityGraph(net, max_markings=MAX_MARKINGS))
            self._cache[name] = count
        return count


@pytest.fixture(scope="session")
def explicit_counts():
    """Explicit reachability oracle, enumerated at most once per net."""
    return _ExplicitCounts()
