"""Tests for the shared decision-diagram kernel (repro.dd).

The tentpole property: one node-table/GC/reorder core under both
managers.  BDD-side behaviour is pinned by the long-standing suites in
``tests/bdd``; this module covers what the ZDD manager gained from the
kernel — reference counting, garbage collection, adjacent-level swaps,
(group) sifting and reorder hooks — and the kernel surface itself.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.bdd import BDD, EMPTY, ZDD, ZDDError
from repro.dd import DDError, DDManager, sift, sift_to_convergence

NUM_ELEMS = 6
NAMES = [f"e{i}" for i in range(NUM_ELEMS)]

set_strategy = st.frozensets(
    st.integers(min_value=0, max_value=NUM_ELEMS - 1), max_size=NUM_ELEMS)
family_strategy = st.frozensets(set_strategy, max_size=12)


def extract(zdd, node):
    return frozenset(zdd.iter_sets(node))


class TestKernelHierarchy:
    def test_both_managers_subclass_the_kernel(self):
        assert issubclass(BDD, DDManager)
        assert issubclass(ZDD, DDManager)
        assert isinstance(BDD(), DDManager)
        assert isinstance(ZDD(), DDManager)

    def test_error_types_share_the_kernel_base(self):
        from repro.bdd import BDDError
        assert issubclass(BDDError, DDError)
        assert issubclass(ZDDError, DDError)

    def test_kernel_is_abstract_over_the_reduction_rule(self):
        manager = DDManager(var_names=["a"])
        with pytest.raises(NotImplementedError):
            manager._mk(0, 0, 1)

    def test_shared_level_bookkeeping_on_zdd(self):
        zdd = ZDD(var_names=NAMES)
        assert zdd.order() == NAMES
        assert [zdd.level_of_var(n) for n in NAMES] == list(range(6))
        assert zdd.var_at_level(0) == 0

    def test_registered_caches_clear_at_safe_points(self):
        zdd = ZDD(var_names=NAMES)
        extra = zdd.register_cache({})
        extra["probe"] = 1
        zdd.clear_caches()
        assert not extra


class TestZddGarbageCollection:
    def test_unreferenced_families_are_freed(self):
        zdd = ZDD(var_names=NAMES)
        zdd.from_sets([{0, 1}, {2, 3}, {4, 5}])
        assert zdd.live_nodes() > 2
        zdd.collect_garbage()
        assert zdd.live_nodes() == 2

    def test_referenced_families_survive(self):
        zdd = ZDD(var_names=NAMES)
        fam = {frozenset({0, 2}), frozenset({1}), frozenset()}
        node = zdd.ref(zdd.from_sets(fam))
        garbage = zdd.from_sets([{3, 4}, {5}])
        assert garbage != node
        zdd.collect_garbage()
        assert extract(zdd, node) == fam
        assert zdd.count(node) == 3

    def test_deref_underflow_raises(self):
        zdd = ZDD(var_names=NAMES)
        node = zdd.ref(zdd.singleton([0]))
        zdd.deref(node)
        with pytest.raises(ZDDError):
            zdd.deref(node)

    def test_freed_slots_are_recycled(self):
        zdd = ZDD(var_names=NAMES)
        zdd.from_sets([{0, 1, 2}])
        zdd.collect_garbage()
        slots_before = zdd.total_nodes()
        zdd.ref(zdd.from_sets([{0, 1, 2}]))
        assert zdd.total_nodes() == slots_before

    @settings(max_examples=60, deadline=None)
    @given(family_strategy, family_strategy)
    def test_gc_preserves_referenced_semantics(self, fam, garbage_fam):
        """Satellite acceptance: collect_garbage preserves count and
        to_sets of every referenced family while dropping the rest."""
        zdd = ZDD(var_names=NAMES)
        node = zdd.ref(zdd.from_sets(fam))
        zdd.from_sets(garbage_fam)  # unreferenced
        zdd.collect_garbage()
        assert frozenset(zdd.to_sets(node)) == fam
        assert zdd.count(node) == len(fam)
        zdd.assert_consistent()


class TestZddReordering:
    def test_swap_preserves_family(self):
        zdd = ZDD(var_names=NAMES)
        fam = {frozenset({0, 1}), frozenset({1, 3, 5}), frozenset({4})}
        node = zdd.ref(zdd.from_sets(fam))
        for level in (0, 3, 4, 1, 0, 2):
            zdd.swap_levels(level)
            zdd.assert_consistent()
            assert extract(zdd, node) == fam

    def test_set_order_preserves_family(self):
        zdd = ZDD(var_names=NAMES)
        fam = {frozenset({0, 2, 4}), frozenset({1}), frozenset()}
        node = zdd.ref(zdd.from_sets(fam))
        zdd.set_order(list(reversed(NAMES)))
        assert zdd.order() == list(reversed(NAMES))
        assert extract(zdd, node) == fam
        zdd.assert_consistent()

    def test_node_ids_stable_across_swap(self):
        zdd = ZDD(var_names=NAMES)
        node = zdd.ref(zdd.from_sets([{0, 1}, {2}]))
        zdd.swap_levels(0)
        assert extract(zdd, node) == {frozenset({0, 1}), frozenset({2})}

    def test_reorder_hooks_fire_once_per_sift_pass(self):
        zdd = ZDD(var_names=NAMES)
        zdd.ref(zdd.from_sets([{0, 3}, {1, 4}, {2, 5}]))
        calls = []
        zdd.add_reorder_hook(lambda mgr: calls.append(mgr.order()))
        sift(zdd)
        assert len(calls) == 1
        assert calls[0] == zdd.order()

    def test_checkpoint_triggers_zdd_reorder(self):
        zdd = ZDD(var_names=NAMES, auto_reorder=True, reorder_threshold=4)
        fam = {frozenset({0, 5}), frozenset({1, 4}), frozenset({2, 3})}
        node = zdd.ref(zdd.from_sets(fam))
        zdd.checkpoint()
        assert zdd.reorder_count == 1
        assert extract(zdd, node) == fam

    def test_group_sifting_keeps_pairs_adjacent(self):
        zdd = ZDD()
        for i in range(4):
            zdd.add_var(f"p{i}")
            zdd.add_var(f"p{i}'")
        fam = {frozenset({0, 2}), frozenset({4, 6}), frozenset({1, 7})}
        node = zdd.ref(zdd.from_sets(fam))
        groups = [(2 * i, 2 * i + 1) for i in range(4)]
        sift(zdd, groups=groups)
        for upper, lower in groups:
            assert zdd.level_of_var(lower) == zdd.level_of_var(upper) + 1
        assert extract(zdd, node) == fam
        zdd.assert_consistent()

    @settings(max_examples=60, deadline=None)
    @given(family_strategy)
    def test_sifting_preserves_count_and_to_sets(self, fam):
        """Satellite acceptance: sifting preserves count/to_sets."""
        zdd = ZDD(var_names=NAMES)
        node = zdd.ref(zdd.from_sets(fam))
        sift_to_convergence(zdd, max_passes=3)
        assert frozenset(zdd.to_sets(node)) == fam
        assert zdd.count(node) == len(fam)
        zdd.assert_consistent()

    @settings(max_examples=40, deadline=None)
    @given(family_strategy, family_strategy,
           st.randoms(use_true_random=False))
    def test_algebra_agrees_after_reordering(self, fam1, fam2, rng):
        """Operations run under a permuted order still match the set
        oracle — levels, not indices, drive every recursion."""
        zdd = ZDD(var_names=NAMES)
        u = zdd.ref(zdd.from_sets(fam1))
        v = zdd.ref(zdd.from_sets(fam2))
        order = list(range(NUM_ELEMS))
        rng.shuffle(order)
        zdd.set_order(order)
        assert extract(zdd, zdd.union(u, v)) == fam1 | fam2
        assert extract(zdd, zdd.intersect(u, v)) == fam1 & fam2
        assert extract(zdd, zdd.diff(u, v)) == fam1 - fam2
        assert extract(zdd, zdd.product(u, v)) == frozenset(
            a | b for a in fam1 for b in fam2)
        qvars = frozenset(order[:2])
        assert extract(zdd, zdd.exists(u, qvars)) == frozenset(
            s - qvars for s in fam1)
        assert extract(zdd, zdd.supset(u, qvars)) == frozenset(
            s for s in fam1 if qvars <= s)
        assert extract(zdd, zdd.and_exists(u, v, qvars)) == frozenset(
            (a | b) - qvars for a in fam1 for b in fam2)


class TestGrowthTrigger:
    """The growth-based reorder trigger armed by the ZDD sessions."""

    def _grown_zdd(self, growth=2.0, floor=8):
        zdd = ZDD(var_names=[f"e{i}" for i in range(12)])
        zdd.configure_reorder(True, reorder_threshold=10**9, growth=growth)
        zdd.reorder_growth_floor = floor
        return zdd

    def test_growth_past_factor_fires_exactly_one_reorder(self):
        zdd = self._grown_zdd()
        zdd.ref(zdd.from_sets([{0, 1}]))
        zdd.checkpoint()  # records the baseline; far below the threshold
        assert zdd.reorder_count == 0
        baseline = zdd._reorder_baseline
        assert baseline is not None
        # Grow the live table well past baseline * growth and the floor.
        fam = frozenset(frozenset({i, (i + 3) % 12, (i + 7) % 12})
                        for i in range(12))
        node = zdd.ref(zdd.from_sets(fam))
        assert zdd.live_nodes() > max(2 * baseline,
                                      zdd.reorder_growth_floor)
        zdd.checkpoint()
        assert zdd.reorder_count == 1
        # The baseline resets: an immediate second safe point with no
        # further growth must NOT reorder again.
        zdd.checkpoint()
        assert zdd.reorder_count == 1
        assert extract(zdd, node) == fam
        zdd.assert_consistent()

    def test_below_floor_never_triggers(self):
        zdd = self._grown_zdd(floor=10**6)
        zdd.ref(zdd.from_sets([{0}]))
        zdd.checkpoint()
        zdd.ref(zdd.from_sets([frozenset({i, (i + 1) % 12})
                               for i in range(12)]))
        zdd.checkpoint()
        assert zdd.reorder_count == 0

    def test_growth_must_exceed_one(self):
        zdd = ZDD(var_names=NAMES)
        with pytest.raises(DDError):
            zdd.configure_reorder(True, reorder_threshold=100, growth=1.0)
        with pytest.raises(DDError):
            zdd.configure_reorder(True, reorder_threshold=100, growth=0.5)

    def test_zdd_nets_arm_the_growth_trigger(self):
        from repro.dd.manager import DEFAULT_REORDER_GROWTH
        from repro.petri.generators import philosophers
        from repro.symbolic.zdd_relational import ZddRelationalNet
        from repro.symbolic.zdd_traversal import ZddNet
        net = philosophers(3)
        for zddnet in (ZddNet(net, auto_reorder=True),
                       ZddRelationalNet(net, auto_reorder=True)):
            assert zddnet.zdd.reorder_growth == DEFAULT_REORDER_GROWTH

    def test_bdd_manager_defaults_to_threshold_only(self):
        bdd = BDD(var_names=["a", "b"], auto_reorder=True)
        assert bdd.reorder_growth is None


class TestResourceBudgets:
    """The safe-point degradation ladder behind set_resource_budget."""

    def _crowded_bdd(self, num_vars=8):
        """A BDD holding a function with no dead nodes to reclaim."""
        from repro.bdd import variable
        bdd = BDD(var_names=[f"x{i}" for i in range(num_vars)])
        acc = variable(bdd, "x0")
        for i in range(1, num_vars):
            acc = acc ^ variable(bdd, f"x{i}")
        return bdd, acc

    def test_checkpoint_within_budget_is_silent(self):
        bdd, _ = self._crowded_bdd()
        bdd.set_resource_budget(node_budget=10_000)
        bdd.checkpoint()  # must not raise

    def test_node_budget_exhaustion_raises_with_telemetry(self):
        from repro.dd import ResourceBudgetExceeded
        bdd, func = self._crowded_bdd()
        bdd.set_resource_budget(node_budget=2)
        with pytest.raises(ResourceBudgetExceeded) as excinfo:
            bdd.checkpoint()
        exc = excinfo.value
        assert exc.kind == "nodes"
        assert exc.node_budget == 2
        assert exc.live_nodes > 2
        assert exc.reorder_forced
        telemetry = exc.telemetry()
        assert telemetry["kind"] == "nodes"
        assert telemetry["node_budget"] == 2
        # The ladder ran a real reorder pass before giving up.
        assert bdd.reorder_count >= 1

    def test_forced_gc_rescues_a_dying_budget(self):
        # Dead nodes put the manager over budget; a forced collection
        # brings it back under, so the safe point must NOT raise.
        from repro.bdd import variable
        bdd = BDD(var_names=[f"x{i}" for i in range(10)])
        keep = variable(bdd, "x0")
        for _ in range(5):
            acc = variable(bdd, "x1")
            for i in range(2, 10):
                acc = acc ^ variable(bdd, f"x{i}")
            del acc  # garbage: reclaimable at the next collection
        bdd.set_resource_budget(node_budget=max(bdd.live_nodes() // 2, 4))
        bdd.checkpoint()
        assert bdd.budget_gc_rescues >= 1
        assert keep.node != 0  # the referenced function survived

    def test_deadline_raises_on_a_virtual_clock(self):
        from repro.dd import ResourceBudgetExceeded
        clock = {"t": 0.0}
        bdd, _ = self._crowded_bdd()
        bdd.set_resource_budget(deadline_seconds=10.0,
                                clock=lambda: clock["t"])
        bdd.checkpoint()  # within the allowance
        clock["t"] = 10.5
        with pytest.raises(ResourceBudgetExceeded) as excinfo:
            bdd.checkpoint()
        exc = excinfo.value
        assert exc.kind == "deadline"
        assert exc.deadline == 10.0
        assert exc.elapsed >= 10.0

    def test_deadline_outranks_node_budget(self):
        # The ladder checks the deadline first: remedial GC/reordering
        # cannot buy wall-clock time back.
        from repro.dd import ResourceBudgetExceeded
        clock = {"t": 100.0}
        bdd, _ = self._crowded_bdd()
        bdd.set_resource_budget(node_budget=1, deadline_seconds=5.0,
                                clock=lambda: clock["t"])
        clock["t"] = 200.0
        with pytest.raises(ResourceBudgetExceeded) as excinfo:
            bdd.checkpoint()
        assert excinfo.value.kind == "deadline"

    def test_budget_validation(self):
        bdd = BDD(var_names=["a"])
        with pytest.raises(DDError):
            bdd.set_resource_budget(node_budget=0)
        with pytest.raises(DDError):
            bdd.set_resource_budget(deadline_seconds=0.0)

    def test_disarming_budgets(self):
        bdd, _ = self._crowded_bdd()
        bdd.set_resource_budget(node_budget=2)
        bdd.set_resource_budget()  # both None: disarm
        bdd.checkpoint()  # must not raise

    def test_zdd_manager_shares_the_budget_kernel(self):
        from repro.dd import ResourceBudgetExceeded
        zdd = ZDD(var_names=NAMES)
        node = zdd.ref(zdd.from_sets(frozenset(
            [frozenset([0, 1]), frozenset([2, 3]), frozenset([4, 5]),
             frozenset([0, 2, 4]), frozenset([1, 3, 5])])))
        zdd.set_resource_budget(node_budget=1)
        with pytest.raises(ResourceBudgetExceeded) as excinfo:
            zdd.checkpoint()
        assert excinfo.value.kind == "nodes"
        assert zdd.count(node) == 5  # the family survived the ladder
