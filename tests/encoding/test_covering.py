"""Unit tests for the unate covering solver."""

import pytest

from repro.encoding.covering import (CoverOption, CoveringError,
                                     smc_cover_options, solve_cover)
from repro.petri import find_smcs
from repro.petri.generators import figure4_net


def opt(label, covers, cost):
    return CoverOption(label=label, covers=frozenset(covers), cost=cost)


class TestExact:
    def test_single_option(self):
        chosen = solve_cover("ab", [opt("s", "ab", 1)])
        assert [o.label for o in chosen] == ["s"]

    def test_prefers_cheap_combination(self):
        options = [opt("big", "abcd", 5),
                   opt("left", "ab", 2), opt("right", "cd", 2)]
        chosen = solve_cover("abcd", options)
        assert {o.label for o in chosen} == {"left", "right"}

    def test_prefers_single_when_cheaper(self):
        options = [opt("big", "abcd", 3),
                   opt("left", "ab", 2), opt("right", "cd", 2)]
        chosen = solve_cover("abcd", options)
        assert {o.label for o in chosen} == {"big"}

    def test_partial_overlap(self):
        options = [opt("s1", "abc", 2), opt("s2", "cde", 2),
                   opt("s3", "e", 1)]
        chosen = solve_cover("abcde", options)
        assert sum(o.cost for o in chosen) == 4

    def test_empty_universe(self):
        assert solve_cover([], [opt("s", "ab", 1)]) == []

    def test_uncoverable_raises(self):
        with pytest.raises(CoveringError):
            solve_cover("abz", [opt("s", "ab", 1)])

    def test_solution_always_covers(self):
        options = [opt(i, cover, cost) for i, (cover, cost) in enumerate(
            [("abc", 2), ("bcd", 2), ("de", 1), ("ae", 2), ("c", 1)])]
        chosen = solve_cover("abcde", options)
        covered = set().union(*(o.covers for o in chosen))
        assert covered >= set("abcde")


class TestGreedyFallback:
    def test_greedy_covers_large_instance(self):
        universe = [f"e{i}" for i in range(40)]
        options = [opt(f"s{i}", {f"e{i}", f"e{(i + 1) % 40}"}, 1)
                   for i in range(40)]
        chosen = solve_cover(universe, options, exact_limit=4)
        covered = set().union(*(o.covers for o in chosen))
        assert covered == set(universe)

    def test_greedy_prefers_efficient_sets(self):
        universe = "abcdef"
        options = [opt("all", "abcdef", 3)] + \
            [opt(c, {c}, 1) for c in universe]
        chosen = solve_cover(universe, options, exact_limit=0)
        assert {o.label for o in chosen} == {"all"}


class TestPaperFormulation:
    def test_figure4_cover_cost_is_ten(self):
        """Section 4.3: minimum-cost cover of the 2-philosopher net uses
        10 variables (SMCs at log-cost plus leftover single places)."""
        net = figure4_net()
        components = find_smcs(net, strategy="farkas")
        smc_options, place_options = smc_cover_options(net.places,
                                                       components)
        chosen = solve_cover(net.places, smc_options + place_options)
        assert sum(o.cost for o in chosen) == 10

    def test_smc_costs_are_logarithmic(self):
        net = figure4_net()
        components = find_smcs(net, strategy="farkas")
        smc_options, place_options = smc_cover_options(net.places,
                                                       components)
        for option in smc_options:
            size = len(option.covers)
            assert option.cost == max(1, (size - 1).bit_length())
        assert all(o.cost == 1 for o in place_options)
