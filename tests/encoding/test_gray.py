"""Unit tests for Gray-like code assignment (Section 5.2)."""

import pytest

from repro.encoding.gray import (assign_arbitrary_codes, assign_gray_codes,
                                 gray_sequence, hamming, place_adjacency,
                                 toggle_cost, walk_order)
from repro.petri import find_smcs, smc_from_places
from repro.petri.generators import figure1_net, figure4_net


class TestGraySequence:
    def test_first_codes(self):
        assert gray_sequence(4, 2) == [
            (False, False), (False, True), (True, True), (True, False)]

    def test_adjacent_codes_differ_by_one_bit(self):
        codes = gray_sequence(8, 3)
        for a, b in zip(codes, codes[1:]):
            assert hamming(a, b) == 1

    def test_cycle_closes_at_power_of_two(self):
        codes = gray_sequence(8, 3)
        assert hamming(codes[-1], codes[0]) == 1

    def test_width_too_small(self):
        with pytest.raises(ValueError):
            gray_sequence(5, 2)

    def test_injective(self):
        assert len(set(gray_sequence(8, 3))) == 8


class TestAdjacency:
    def test_figure1_smc_moves(self):
        net = figure1_net()
        smc = smc_from_places(net, ("p1", "p2", "p4", "p6"))
        moves = set(place_adjacency(net, smc))
        assert moves == {("p1", "p2"), ("p1", "p4"),
                         ("p2", "p6"), ("p4", "p6"), ("p6", "p1")}

    def test_walk_starts_at_marked_place(self):
        net = figure1_net()
        smc = smc_from_places(net, ("p1", "p2", "p4", "p6"))
        order = walk_order(net, smc)
        assert order[0] == "p1"
        assert sorted(order) == ["p1", "p2", "p4", "p6"]


class TestAssignment:
    def test_gray_codes_injective_and_right_width(self):
        net = figure4_net()
        for smc in find_smcs(net, strategy="farkas"):
            codes = assign_gray_codes(net, smc)
            assert len(set(codes.values())) == len(smc.places)
            width = max(1, (len(smc.places) - 1).bit_length())
            assert all(len(code) == width for code in codes.values())

    def test_gray_beats_arbitrary_on_cycles(self):
        """On the paper's SM1 cycle, Gray assignment reaches the optimum
        of one toggle per transition."""
        net = figure4_net()
        smc = smc_from_places(net, ("p1", "p2", "p6", "p8"))
        moves = place_adjacency(net, smc)
        gray = assign_gray_codes(net, smc)
        assert toggle_cost(moves, gray) == len(moves)

    def test_gray_no_worse_than_arbitrary(self):
        net = figure4_net()
        for smc in find_smcs(net, strategy="farkas"):
            moves = place_adjacency(net, smc)
            gray = assign_gray_codes(net, smc)
            arbitrary = assign_arbitrary_codes(smc)
            assert (toggle_cost(moves, gray)
                    <= toggle_cost(moves, arbitrary))

    def test_arbitrary_codes_shape(self):
        net = figure4_net()
        smc = smc_from_places(net, ("p1", "p2", "p6", "p8"))
        codes = assign_arbitrary_codes(smc)
        assert len(set(codes.values())) == 4
        with pytest.raises(ValueError):
            assign_arbitrary_codes(smc, width=1)

    def test_toggle_cost_empty_moves(self):
        assert toggle_cost([], {}) == 0
