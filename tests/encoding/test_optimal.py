"""Unit tests for marking-level encodings (Section 3 / Figure 2.c-d)."""

import pytest

from repro.encoding.optimal import (MarkingEncoding,
                                    binary_marking_encoding,
                                    greedy_gray_marking_encoding,
                                    optimal_variable_count,
                                    random_marking_encoding)
from repro.petri import ReachabilityGraph
from repro.petri.generators import figure1_net


@pytest.fixture(scope="module")
def graph():
    return ReachabilityGraph(figure1_net())


class TestWidth:
    def test_figure1_needs_three_variables(self, graph):
        """8 markings -> 3 variables (Figure 2.c/d use three)."""
        assert optimal_variable_count(len(graph.markings)) == 3

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            optimal_variable_count(0)

    def test_single_marking(self):
        assert optimal_variable_count(1) == 1


class TestEncodings:
    def test_codes_are_injective(self, graph):
        enc = binary_marking_encoding(graph)
        assert len(set(enc.codes.values())) == len(graph.markings)

    def test_injectivity_enforced(self, graph):
        codes = {m: (False, False, False) for m in graph.markings}
        with pytest.raises(ValueError):
            MarkingEncoding(graph, codes)

    def test_all_markings_required(self, graph):
        codes = {graph.markings[0]: (False, False, False)}
        with pytest.raises(ValueError):
            MarkingEncoding(graph, codes)

    def test_toggle_cost_positive(self, graph):
        enc = binary_marking_encoding(graph)
        assert enc.toggle_cost() > 0
        assert enc.average_toggles() == enc.toggle_cost() / 11

    def test_greedy_beats_random(self, graph):
        """The Figure 2 point: a toggle-aware assignment (15/11) beats an
        arbitrary one (19/11)."""
        greedy = greedy_gray_marking_encoding(graph)
        worst = max(random_marking_encoding(graph, seed=s).toggle_cost()
                    for s in range(5))
        assert greedy.toggle_cost() < worst

    def test_greedy_reaches_paper_range(self, graph):
        """Figure 2.c achieves 15 toggled bits over the 11 edges; the
        greedy heuristic should do at least that well."""
        greedy = greedy_gray_marking_encoding(graph)
        assert greedy.toggle_cost() <= 15

    def test_some_assignment_is_as_bad_as_figure2d(self, graph):
        """Figure 2.d's arbitrary assignment costs 19; arbitrary orders
        do land in that region."""
        costs = [random_marking_encoding(graph, seed=s).toggle_cost()
                 for s in range(10)]
        assert max(costs) >= 19

    def test_random_is_deterministic_per_seed(self, graph):
        enc_a = random_marking_encoding(graph, seed=3)
        enc_b = random_marking_encoding(graph, seed=3)
        assert enc_a.codes == enc_b.codes
