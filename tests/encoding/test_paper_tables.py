"""Literal reproduction of the paper's Tables 1 and 2 and Figure 2/3
artifacts on the two-philosopher net."""

import pytest

from repro.bdd import BDD
from repro.encoding import ImprovedEncoding, place_functions
from repro.encoding.characteristic import declare_variables
from repro.petri import ReachabilityGraph, smc_from_places
from repro.petri.generators import (FIGURE3_SMC_PLACES, figure4_net)


@pytest.fixture(scope="module")
def paper_encoding():
    """Improved encoding built from the SMCs in the paper's order."""
    net = figure4_net()
    components = [smc_from_places(net, places, name=f"SM{i + 1}")
                  for i, places in enumerate(FIGURE3_SMC_PLACES)]
    assert all(components)
    return net, ImprovedEncoding(net, components=components)


def code_str(encoding, comp_name, place):
    comp = next(c for c in encoding.components if c.name == comp_name)
    return "".join(str(int(b)) for b in comp.codes[place])


class TestTable1:
    """Table 1: the exact variable assignment of the paper."""

    def test_eight_variables(self, paper_encoding):
        _, enc = paper_encoding
        assert enc.num_variables == 8

    def test_component_order_and_widths(self, paper_encoding):
        _, enc = paper_encoding
        names = [c.name for c in enc.components]
        widths = [len(c.variables) for c in enc.components]
        assert names == ["SM1", "SM3", "SM2", "SM4"]
        assert widths == [2, 2, 1, 1]

    def test_sm1_codes(self, paper_encoding):
        _, enc = paper_encoding
        assert code_str(enc, "SM1", "p1") == "00"
        assert code_str(enc, "SM1", "p2") == "01"
        assert code_str(enc, "SM1", "p6") == "11"
        assert code_str(enc, "SM1", "p8") == "10"

    def test_sm3_codes(self, paper_encoding):
        _, enc = paper_encoding
        assert code_str(enc, "SM3", "p9") == "00"
        assert code_str(enc, "SM3", "p10") == "01"
        assert code_str(enc, "SM3", "p12") == "11"
        assert code_str(enc, "SM3", "p14") == "10"

    def test_sm2_codes(self, paper_encoding):
        _, enc = paper_encoding
        assert code_str(enc, "SM2", "p1") == "0"
        assert code_str(enc, "SM2", "p3") == "0"
        assert code_str(enc, "SM2", "p7") == "1"
        assert code_str(enc, "SM2", "p8") == "1"

    def test_sm4_codes(self, paper_encoding):
        _, enc = paper_encoding
        assert code_str(enc, "SM4", "p9") == "0"
        assert code_str(enc, "SM4", "p11") == "0"
        assert code_str(enc, "SM4", "p13") == "1"
        assert code_str(enc, "SM4", "p14") == "1"

    def test_forks_are_free_places(self, paper_encoding):
        _, enc = paper_encoding
        assert enc.free_places == ["p4", "p5"]


class TestTable2:
    """Table 2: the characteristic functions, checked semantically —
    [p] must hold exactly on the encodings of markings that mark p."""

    def test_characteristic_functions_on_all_markings(self, paper_encoding):
        net, enc = paper_encoding
        bdd = BDD()
        declare_variables(enc, bdd)
        places = place_functions(enc, bdd)
        for marking in ReachabilityGraph(net).markings:
            assignment = enc.marking_to_assignment(marking)
            for place in net.places:
                assert places[place](assignment) == (place in marking), \
                    f"[{place}] wrong on {marking!r}"

    def test_shared_code_functions_use_resolvers(self, paper_encoding):
        """[p3] = !x5 (x1 + x2): the shared code 0 with p1 is resolved by
        SM1's variables (Table 2, first column)."""
        net, enc = paper_encoding
        bdd = BDD()
        declare_variables(enc, bdd)
        places = place_functions(enc, bdd)
        # Paper formula for [p3].
        import repro.bdd as bddlib
        x1 = bddlib.variable(bdd, "x1")
        x2 = bddlib.variable(bdd, "x2")
        x5 = bddlib.variable(bdd, "x5")
        assert places["p3"] == (~x5 & (x1 | x2))

    def test_owned_place_functions_are_plain_cubes(self, paper_encoding):
        """[p1] = !x1 !x2 and [p8] = x1 !x2 (Table 2)."""
        net, enc = paper_encoding
        bdd = BDD()
        declare_variables(enc, bdd)
        places = place_functions(enc, bdd)
        import repro.bdd as bddlib
        x1 = bddlib.variable(bdd, "x1")
        x2 = bddlib.variable(bdd, "x2")
        assert places["p1"] == (~x1 & ~x2)
        assert places["p8"] == (x1 & ~x2)

    def test_free_place_functions_are_literals(self, paper_encoding):
        net, enc = paper_encoding
        bdd = BDD()
        declare_variables(enc, bdd)
        places = place_functions(enc, bdd)
        import repro.bdd as bddlib
        assert places["p4"] == bddlib.variable(bdd, "p4")
        assert places["p5"] == bddlib.variable(bdd, "p5")


class TestFigure3:
    """Figure 3: the six SMCs of the two-philosopher net."""

    def test_all_six_validate(self):
        net = figure4_net()
        for places in FIGURE3_SMC_PLACES:
            smc = smc_from_places(net, places)
            assert smc is not None
            assert smc.token_count == 1
