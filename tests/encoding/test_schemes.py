"""Unit tests for the sparse, dense and improved encodings."""

import pytest

from repro.encoding import (DenseEncoding, EncodingError, ImprovedEncoding,
                            SparseEncoding)
from repro.petri import Marking, ReachabilityGraph, find_smcs
from repro.petri.generators import (figure1_net, figure4_net, muller,
                                    slotted_ring)

ALL_SCHEMES = [SparseEncoding, DenseEncoding, ImprovedEncoding]


class TestSparse:
    def test_one_variable_per_place(self):
        net = figure1_net()
        enc = SparseEncoding(net)
        assert enc.variables == net.places
        assert enc.num_variables == 7

    def test_owner_code_is_place_literal(self):
        enc = SparseEncoding(figure1_net())
        assert enc.owner_code("p3") == (("p3", True),)
        assert enc.partners("p3") == ()

    def test_owner_code_unknown_place(self):
        enc = SparseEncoding(figure1_net())
        with pytest.raises(KeyError):
            enc.owner_code("zzz")

    def test_transition_spec_figure1(self):
        enc = SparseEncoding(figure1_net())
        spec = enc.transition_spec("t1")  # p1 -> p2, p3
        assert set(spec.quantify) == {"p1", "p2", "p3"}
        assert dict(spec.force) == {"p1": False, "p2": True, "p3": True}
        assert set(spec.toggle) == {"p1", "p2", "p3"}

    def test_self_loop_untouched(self):
        net = muller(2)
        enc = SparseEncoding(net)
        spec = enc.transition_spec("t_y0_up")
        # Read arcs (self-loops) must not appear in the update.
        forced = dict(spec.force)
        assert "y1_1" not in forced and "y7_1" not in forced
        assert forced == {"y0_0": False, "y0_1": True}

    def test_assignment_roundtrip(self):
        net = figure1_net()
        enc = SparseEncoding(net)
        marking = Marking(["p2", "p3"])
        assignment = enc.marking_to_assignment(marking)
        assert assignment["p2"] and assignment["p3"]
        assert not assignment["p1"]
        assert enc.assignment_to_marking(assignment) == marking


class TestDense:
    def test_figure4_needs_ten_variables(self):
        """Section 4.3: the covering-based scheme uses 10 variables."""
        assert DenseEncoding(figure4_net()).num_variables == 10

    def test_figure1_needs_four_variables(self):
        """Two 4-place SMCs cover the net: 2 + 2 variables."""
        enc = DenseEncoding(figure1_net())
        assert enc.num_variables == 4
        assert not enc.free_places

    def test_density_section43(self):
        """The paper quotes density D = 5/10 = 0.5 for the example."""
        enc = DenseEncoding(figure4_net())
        assert enc.density(22) == pytest.approx(0.5)

    def test_injective_codes_within_component(self):
        enc = DenseEncoding(figure4_net())
        for comp in enc.components:
            codes = [comp.codes[p] for p in comp.component.places]
            assert len(set(codes)) == len(codes)

    def test_no_partners_in_basic_scheme(self):
        enc = DenseEncoding(figure4_net())
        for place in enc.net.places:
            assert enc.partners(place) == ()

    def test_muller_halves_variables(self):
        net = muller(3)
        enc = DenseEncoding(net)
        assert enc.num_variables == len(net.places) // 2

    def test_explicit_components_respected(self):
        net = figure1_net()
        comps = find_smcs(net)[:1]
        enc = DenseEncoding(net, components=comps)
        assert len(enc.components) == 1
        assert len(enc.free_places) == 3  # the other SMC's own places


class TestImproved:
    def test_figure4_needs_eight_variables(self):
        """Table 1: the improved scheme uses 8 variables."""
        assert ImprovedEncoding(figure4_net()).num_variables == 8

    def test_zero_variable_extension(self):
        """Allowing zero-variable components drops two more variables."""
        enc = ImprovedEncoding(figure4_net(),
                               allow_zero_variable_components=True)
        assert enc.num_variables == 6
        assert not enc.free_places
        zero_var = [c for c in enc.components if not c.variables]
        assert len(zero_var) == 2

    def test_new_places_have_unique_codes(self):
        enc = ImprovedEncoding(figure4_net())
        for comp in enc.components:
            owned_codes = [comp.codes[p] for p in comp.owned]
            assert len(set(owned_codes)) == len(owned_codes)

    def test_partners_are_owned_earlier(self):
        enc = ImprovedEncoding(figure4_net())
        position = {comp: i for i, comp in enumerate(enc.components)}
        for place in enc.net.places:
            owner = enc.owner_component(place)
            for partner in enc.partners(place):
                partner_owner = enc.owner_component(partner)
                assert partner_owner is not None
                assert position[partner_owner] < position[owner]

    def test_slotted_ring_five_variables_per_station(self):
        """Table 3 shape: slot-n uses half the sparse variables."""
        for stations in (2, 3):
            net = slotted_ring(stations)
            enc = ImprovedEncoding(net)
            assert enc.num_variables == 5 * stations

    def test_disabled_gray_still_valid(self):
        net = figure4_net()
        enc = ImprovedEncoding(net, gray=False)
        rg = ReachabilityGraph(net)
        for marking in rg.markings:
            assignment = enc.marking_to_assignment(marking)
            assert enc.assignment_to_marking(assignment) == marking


class TestRoundTripAllSchemes:
    @pytest.mark.parametrize("scheme", ALL_SCHEMES)
    @pytest.mark.parametrize("factory", [figure1_net, figure4_net,
                                         lambda: muller(2),
                                         lambda: slotted_ring(2)])
    def test_all_reachable_markings_roundtrip(self, scheme, factory):
        net = factory()
        enc = scheme(net)
        for marking in ReachabilityGraph(net).markings:
            assignment = enc.marking_to_assignment(marking)
            assert set(assignment) == set(enc.variables)
            assert enc.assignment_to_marking(assignment) == marking

    @pytest.mark.parametrize("scheme", [DenseEncoding, ImprovedEncoding])
    def test_unreachable_marking_rejected(self, scheme):
        """A marking violating an SMC invariant has no encoding."""
        net = figure1_net()
        enc = scheme(net)
        with pytest.raises(EncodingError):
            enc.marking_to_assignment(Marking(["p2", "p4", "p3", "p5"]))
        with pytest.raises(EncodingError):
            enc.marking_to_assignment(Marking([]))

    @pytest.mark.parametrize("scheme", ALL_SCHEMES)
    def test_density_monotone_in_variables(self, scheme):
        net = figure4_net()
        enc = scheme(net)
        assert enc.density(22) == pytest.approx(5 / enc.num_variables)
        with pytest.raises(EncodingError):
            enc.density(0)

    @pytest.mark.parametrize("scheme", ALL_SCHEMES)
    def test_describe_mentions_every_place(self, scheme):
        net = figure1_net()
        text = scheme(net).describe()
        for place in net.places:
            assert place in text
