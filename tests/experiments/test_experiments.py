"""Unit tests for the experiment harness (runner, tables, figure)."""

import pytest

from repro.experiments.figure2 import run as figure2_run
from repro.experiments.runner import (ExperimentRow, compare_engines,
                                      format_table, run_dense, run_sparse,
                                      run_zdd)
from repro.experiments.table3 import (HARNESS_SIZES, PAPER_SIZES,
                                      PAPER_TABLE3, instances)
from repro.experiments.table4 import PAPER_TABLE4
from repro.petri.generators import figure1_net, muller


class TestRunner:
    def test_run_sparse_row(self):
        row = run_sparse("fig1", figure1_net(), reorder=False)
        assert row.engine == "sparse"
        assert row.markings == 8
        assert row.variables == 7
        assert row.nodes > 2
        assert row.seconds >= 0

    def test_run_dense_row(self):
        row = run_dense("fig1", figure1_net(), reorder=False)
        assert row.engine == "dense"
        assert row.markings == 8
        assert row.variables == 4

    def test_run_zdd_row_default_is_project_default(self):
        # The default ZDD engine comes from AnalysisSpec (chained), the
        # same default the CLI's --engine zdd resolves to — the old
        # classic-vs-chained skew between runner and CLI is gone.
        from repro.analysis import AnalysisSpec
        row = run_zdd("fig1", figure1_net())
        default = AnalysisSpec(backend="zdd")
        assert row.engine == f"zdd-{default.resolved_engine}"
        assert row.engine == "zdd-chained"
        assert row.markings == 8
        assert row.variables == 7

    def test_run_zdd_row_classic_baseline(self):
        row = run_zdd("fig1", figure1_net(), engine="classic")
        assert row.engine == "zdd"
        assert row.markings == 8
        assert row.variables == 7
        assert row.peak_nodes > 0

    def test_density(self):
        row = ExperimentRow("x", "dense", markings=22, variables=10,
                            nodes=5, seconds=0.0)
        assert row.density() == pytest.approx(0.5)

    def test_dense_supports_custom_factory(self):
        from repro.encoding import DenseEncoding
        row = run_dense(
            "fig1", figure1_net(), reorder=False,
            encoding_factory=lambda net, smcs: DenseEncoding(
                net, components=smcs))
        assert row.variables == 4

    def test_run_through_result_cache(self, tmp_path):
        """A second sweep over a shared cache re-runs nothing, and the
        cached row reports the original solve's measurements."""
        from repro.analysis import AnalysisSpec
        from repro.experiments.runner import run
        from repro.service import ResultCache
        cache = ResultCache(directory=tmp_path)
        net, spec = figure1_net(), AnalysisSpec()
        cold = run("fig1", net, spec, cache=cache)
        assert cache.stats()["writes"] == 1
        warm = run("fig1", net, spec, cache=cache)
        assert warm == cold          # seconds included: the solve's own
        assert cache.stats()["hits_memory"] == 1
        # Durability knobs share the entry; a semantic change does not.
        assert run("fig1", net, spec.replace(max_iterations=9),
                   cache=cache) == cold
        zdd = run("fig1", net, AnalysisSpec(backend="zdd"), cache=cache)
        assert zdd.engine == "zdd-chained"
        assert cache.stats()["writes"] == 2


class TestFormatting:
    def test_format_table_groups_instances(self):
        rows = [run_sparse("fig1", figure1_net(), reorder=False),
                run_dense("fig1", figure1_net(), reorder=False)]
        text = format_table("demo", rows, engines=("sparse", "dense"))
        assert "demo" in text
        assert "fig1" in text
        assert text.count("fig1") == 1  # one line per instance

    def test_format_table_missing_engine(self):
        rows = [run_sparse("fig1", figure1_net(), reorder=False)]
        text = format_table("demo", rows, engines=("sparse", "dense"))
        assert "-" in text

    def test_compare_engines(self):
        rows = [run_sparse("fig1", figure1_net(), reorder=False),
                run_dense("fig1", figure1_net(), reorder=False)]
        ratios = compare_engines(rows, "sparse", "dense")
        assert ratios["fig1"]["variables"] == pytest.approx(7 / 4)
        assert ratios["fig1"]["nodes"] > 1


class TestTable3Config:
    def test_instances_cover_three_families(self):
        pairs = instances(HARNESS_SIZES)
        families = {name.split("-")[0] for name, _ in pairs}
        assert families == {"muller", "phil", "slot"}

    def test_paper_sizes_match_table(self):
        for family, sizes in PAPER_SIZES.items():
            for size in sizes:
                assert f"{family}-{size}" in PAPER_TABLE3

    def test_paper_table3_shapes(self):
        """The paper's own numbers: dense V is half sparse V."""
        for name, (markings, sparse, dense) in PAPER_TABLE3.items():
            assert dense[0] <= 0.55 * sparse[0]

    def test_paper_table4_shapes(self):
        """The paper's own numbers: dense nodes below ZDD nodes."""
        for name, (markings, zdd, dense) in PAPER_TABLE4.items():
            assert dense[0] < zdd[0]
            assert dense[1] < zdd[1]


class TestFigure2:
    def test_summaries(self):
        summaries = figure2_run()
        assert [s.variables for s in summaries] == [7, 4, 3, 3]
        toggle_aware = summaries[2]
        arbitrary = summaries[3]
        assert toggle_aware.toggle_cost <= 15 / 11 + 1e-9
        assert arbitrary.toggle_cost > toggle_aware.toggle_cost


class TestAblation:
    def test_variable_ablation_monotone(self):
        from repro.experiments.ablation import encoding_variable_ablation
        rows = encoding_variable_ablation()
        by_config = {}
        for row in rows:
            by_config.setdefault(row.instance, {})[row.configuration] = \
                row.value
        for instance, values in by_config.items():
            assert values["dense/improved"] <= values["dense/covering"]
            assert values["dense/covering"] < values["sparse"]
            assert values["dense/zero-var"] <= values["dense/improved"]

    def test_gray_ablation_not_worse(self):
        from repro.experiments.ablation import gray_code_ablation
        rows = gray_code_ablation()
        by_instance = {}
        for row in rows:
            key = "gray" if "gray" in row.configuration else "binary"
            by_instance.setdefault(row.instance, {})[key] = row.value
        for instance, values in by_instance.items():
            assert values["gray"] <= values["binary"]


class TestScaling:
    def test_measure_muller_uses_closed_form(self):
        from repro.experiments.scaling import measure
        row = measure("muller", 3)
        assert row.markings == 30
        assert row.sparse_variables == 12
        assert row.dense_variables == 6
        assert row.reduction == 0.5

    def test_density_ordering(self):
        from repro.experiments.scaling import measure
        row = measure("slot", 2)
        assert row.dense_density() > row.sparse_density()
        assert row.dense_density() <= 1.0

    def test_run_covers_all_families(self):
        from repro.experiments.scaling import run
        rows = run({"muller": (2,), "phil": (2,), "slot": (2,),
                    "dmespec": (2,)})
        assert len(rows) == 4
        assert all(r.reduction <= 0.6 for r in rows)
