"""Unit tests for structural net classes."""

from repro.petri import PetriNet
from repro.petri.classes import (classify, conflict_clusters,
                                 is_extended_free_choice, is_free_choice,
                                 is_marked_graph, is_state_machine)
from repro.petri.generators import (figure1_net, figure4_net, muller,
                                    philosophers, slotted_ring)


def cycle_net():
    net = PetriNet("cycle")
    net.add_place("a", tokens=1)
    net.add_place("b")
    net.add_transition("t1", pre=["a"], post=["b"])
    net.add_transition("t2", pre=["b"], post=["a"])
    return net


class TestStateMachine:
    def test_cycle_is_state_machine(self):
        assert is_state_machine(cycle_net())

    def test_figure1_is_not(self):
        assert not is_state_machine(figure1_net())


class TestMarkedGraph:
    def test_cycle_is_marked_graph(self):
        assert is_marked_graph(cycle_net())

    def test_figure1_is_not(self):
        # p1 has two output transitions (a choice).
        assert not is_marked_graph(figure1_net())

    def test_muller_is_not_marked_graph(self):
        # Read arcs give places several output transitions.
        assert not is_marked_graph(muller(2))


class TestFreeChoice:
    def test_figure1_is_free_choice(self):
        """The running example's choices (p1 -> t1/t2) are free: both
        transitions have p1 as their only input."""
        assert is_free_choice(figure1_net())
        assert is_extended_free_choice(figure1_net())

    def test_philosophers_are_not_free_choice(self):
        """Fork competition is a non-free choice (confusion)."""
        assert not is_free_choice(figure4_net())
        assert not is_extended_free_choice(figure4_net())

    def test_free_choice_implies_extended(self):
        for factory in (figure1_net, figure4_net, lambda: muller(2),
                        lambda: slotted_ring(2)):
            net = factory()
            if is_free_choice(net):
                assert is_extended_free_choice(net)

    def test_efc_but_not_fc(self):
        """Two transitions with identical two-place presets: extended
        free choice but not free choice."""
        net = PetriNet()
        net.add_place("a", tokens=1)
        net.add_place("b", tokens=1)
        net.add_transition("t1", pre=["a", "b"], post=["a", "b"])
        net.add_transition("t2", pre=["a", "b"], post=["a", "b"])
        assert not is_free_choice(net)
        assert is_extended_free_choice(net)


class TestClusters:
    def test_figure1_clusters(self):
        clusters = conflict_clusters(figure1_net())
        by_member = {node: cluster for cluster in clusters
                     for node in cluster}
        # p1 clusters with its competing output transitions.
        assert by_member["p1"] == frozenset({"p1", "t1", "t2"})
        # p6 and p7 join through the synchronizing t7.
        assert by_member["p6"] == by_member["p7"]

    def test_clusters_partition_all_nodes(self):
        net = figure4_net()
        clusters = conflict_clusters(net)
        everything = set(net.places) | set(net.transitions)
        seen = set()
        for cluster in clusters:
            assert not (cluster & seen)
            seen |= cluster
        assert seen == everything

    def test_fork_cluster_spans_philosophers(self):
        """A shared fork joins both takers into one cluster."""
        clusters = conflict_clusters(figure4_net())
        by_member = {node: cluster for cluster in clusters
                     for node in cluster}
        assert "t2" in by_member["p4"]   # phil 1 takes right fork p4
        assert "t8" in by_member["p4"]   # phil 2 takes left fork p4


class TestClassify:
    def test_report_keys(self):
        report = classify(figure1_net())
        assert set(report) == {"state_machine", "marked_graph",
                               "free_choice", "extended_free_choice"}

    def test_smc_subnet_classifies_as_state_machine(self):
        net = figure1_net()
        sub = net.subnet_generated_by_places(["p1", "p2", "p4", "p6"])
        report = classify(sub)
        assert report["state_machine"]
        assert report["free_choice"]
