"""Unit and consistency tests for the benchmark net generators."""

import pytest

from repro.petri import (ReachabilityGraph, count_reachable_markings,
                         find_smcs, is_smc_decomposable)
from repro.petri.generators import (dme_circuit, dme_spec, figure1_net,
                                    figure4_net, jj_register, muller,
                                    muller_marking_count, muller_ring,
                                    philosophers, slotted_ring)


def check_family(net, max_markings=300_000):
    """Shared liveness/safety/decomposability checks for every family."""
    net.validate()
    rg = ReachabilityGraph(net, max_markings=max_markings)
    assert rg.is_safe()
    components = find_smcs(net)
    assert is_smc_decomposable(net, components)
    return rg, components


class TestFigure1:
    def test_counts(self):
        net = figure1_net()
        assert len(net.places) == 7
        assert len(net.transitions) == 7
        assert count_reachable_markings(net) == 8


class TestPhilosophers:
    def test_figure4_is_paper_net(self):
        net = figure4_net()
        assert len(net.places) == 14
        assert len(net.transitions) == 10
        assert count_reachable_markings(net) == 22

    def test_paper_names_arcs(self):
        net = figure4_net()
        assert net.preset("t2") == {"p2", "p4"}
        assert net.postset("t5") == {"p1", "p4", "p5"}
        assert net.preset("t9") == {"p12", "p13"}

    @pytest.mark.parametrize("count", [2, 3, 4])
    def test_scaling(self, count):
        net = philosophers(count)
        assert len(net.places) == 7 * count
        assert len(net.transitions) == 5 * count
        rg, _ = check_family(net)
        # Philosophers deadlock (every one holds one fork): n ring deadlocks.
        assert len(rg.deadlocks()) == 2 if count == 2 else True

    def test_generic_names_match_paper_structure(self):
        generic = philosophers(2)
        paper = figure4_net()
        assert count_reachable_markings(generic) == \
            count_reachable_markings(paper)

    def test_too_few_philosophers(self):
        with pytest.raises(ValueError):
            philosophers(1)

    def test_paper_names_require_two(self):
        with pytest.raises(ValueError):
            philosophers(3, paper_names=True)


class TestMuller:
    @pytest.mark.parametrize("stages", [2, 3, 4, 5])
    def test_marking_count_closed_form(self, stages):
        net = muller(stages)
        assert len(net.places) == 4 * stages
        assert (count_reachable_markings(net)
                == muller_marking_count(stages))

    def test_family_checks(self):
        rg, components = check_family(muller(3))
        assert len(rg.deadlocks()) == 0
        assert all(len(c) == 2 for c in components)

    def test_state_space_is_proper_subset(self):
        """The reachable set must not be the whole product space, or the
        dense reachability BDD would be trivial."""
        stages = 4
        assert muller_marking_count(stages) < 2 ** (2 * stages)

    def test_ring_rejects_degenerate_parameters(self):
        with pytest.raises(ValueError):
            muller_ring(2)
        with pytest.raises(ValueError):
            muller_ring(6, high_signals=6)
        with pytest.raises(ValueError):
            muller(1)


class TestSlottedRing:
    @pytest.mark.parametrize("stations", [2, 3])
    def test_scaling(self, stations):
        net = slotted_ring(stations)
        assert len(net.places) == 10 * stations
        assert len(net.transitions) == 5 * stations
        rg, _ = check_family(net)
        assert len(rg.deadlocks()) == 0

    def test_smc_structure(self):
        _, components = check_family(slotted_ring(3))
        supports = {c.place_set for c in components}
        for i in range(3):
            assert frozenset({f"s{i}_c0", f"s{i}_c1",
                              f"s{i}_c2", f"s{i}_c3"}) in supports
            for wire in ("p", "a", "b"):
                assert frozenset({f"s{i}_{wire}0", f"s{i}_{wire}1"}) \
                    in supports

    def test_too_small(self):
        with pytest.raises(ValueError):
            slotted_ring(1)


class TestDME:
    @pytest.mark.parametrize("cells", [2, 3])
    def test_spec_scaling(self, cells):
        net = dme_spec(cells)
        assert len(net.places) == 12 * cells
        rg, _ = check_family(net)
        assert len(rg.deadlocks()) == 0

    def test_spec_mutual_exclusion(self):
        """At most one user is in its critical section, ever."""
        rg = ReachabilityGraph(dme_spec(3), max_markings=300_000)
        for marking in rg.markings:
            critical = [p for p in marking.support if p.endswith("_uc")]
            assert len(critical) <= 1

    def test_circuit_scaling(self):
        net = dme_circuit(2, wire_depth=2)
        assert len(net.places) == 2 * (12 + 4 * 2)
        rg, _ = check_family(net)
        assert len(rg.deadlocks()) == 0

    def test_circuit_is_larger_than_spec(self):
        """The gate-level expansion must blow up the state count — the
        Table 4 effect."""
        spec_count = count_reachable_markings(dme_spec(2))
        cir_count = count_reachable_markings(dme_circuit(2, wire_depth=1))
        assert cir_count > 10 * spec_count

    def test_too_small(self):
        with pytest.raises(ValueError):
            dme_spec(1)
        with pytest.raises(ValueError):
            dme_circuit(2, wire_depth=-1)


class TestJJRegister:
    def test_default_size_matches_jjreg_regime(self):
        net = jj_register("a")
        assert len(net.places) == 8 + 6 * 40  # 248, the paper's regime

    @pytest.mark.parametrize("variant", ["a", "b"])
    def test_small_instance(self, variant):
        net = jj_register(variant, bits=2)
        rg, _ = check_family(net)
        assert len(rg.deadlocks()) == 0

    def test_variant_b_strictly_smaller(self):
        """The ring-driven inputs of variant b must cut the reachable
        set (the paper's JJreg-b has far fewer markings than JJreg-a)."""
        count_a = count_reachable_markings(jj_register("a", bits=3))
        count_b = count_reachable_markings(jj_register("b", bits=3))
        assert count_b < count_a

    def test_bad_parameters(self):
        with pytest.raises(ValueError):
            jj_register("c")
        with pytest.raises(ValueError):
            jj_register("a", bits=0)
