"""Unit tests for the incidence matrix and state equation (Section 2.1)."""

import numpy as np
import pytest

from repro.petri import Marking
from repro.petri.generators import figure1_net
from repro.petri.incidence import (check_invariant, firing_count_vector,
                                   incidence_matrix, invariant_token_count,
                                   marking_vector, state_equation)

# The incidence matrix printed in Section 2.1 of the paper.
PAPER_MATRIX = np.array([
    [-1, -1, 0, 0, 0, 0, 1],
    [1, 0, -1, 0, 0, 0, 0],
    [1, 0, 0, -1, 0, 0, 0],
    [0, 1, 0, 0, -1, 0, 0],
    [0, 1, 0, 0, 0, -1, 0],
    [0, 0, 1, 0, 1, 0, -1],
    [0, 0, 0, 1, 0, 1, -1],
])


def test_incidence_matrix_matches_paper():
    assert np.array_equal(incidence_matrix(figure1_net()), PAPER_MATRIX)


def test_marking_vector_matches_paper_m0():
    net = figure1_net()
    assert np.array_equal(marking_vector(net, net.initial_marking),
                          np.array([1, 0, 0, 0, 0, 0, 0]))


def test_firing_count_vector():
    net = figure1_net()
    sigma = firing_count_vector(net, ["t1", "t3", "t1"])
    assert sigma.tolist() == [2, 0, 1, 0, 0, 0, 0]


def test_state_equation_matches_token_game():
    net = figure1_net()
    sequence = ["t1", "t3", "t4", "t7", "t2"]
    via_equation = state_equation(net, net.initial_marking, sequence)
    via_firing = net.fire_sequence(net.initial_marking, sequence)
    assert np.array_equal(via_equation,
                          marking_vector(net, via_firing))


def test_paper_invariants_check_out():
    net = figure1_net()
    # I = [2 1 1 1 1 1 1] is an invariant but not minimal; I1 and I2 are.
    assert check_invariant(net, [2, 1, 1, 1, 1, 1, 1])
    assert check_invariant(net, [1, 1, 0, 1, 0, 1, 0])
    assert check_invariant(net, [1, 0, 1, 0, 1, 0, 1])
    assert not check_invariant(net, [1, 0, 0, 0, 0, 0, 0])


def test_invariant_token_count_constant_over_firings():
    net = figure1_net()
    weights = [1, 1, 0, 1, 0, 1, 0]
    marking = net.initial_marking
    count = invariant_token_count(net, weights, marking)
    assert count == 1
    for trans in ["t1", "t3", "t4", "t7"]:
        marking = net.fire(marking, trans)
        assert invariant_token_count(net, weights, marking) == count


def test_check_invariant_wrong_length():
    with pytest.raises(ValueError):
        check_invariant(figure1_net(), [1, 2, 3])
