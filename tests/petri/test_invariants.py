"""Unit tests for P-invariant computation (Farkas elimination)."""

import pytest

from repro.petri import PetriNet
from repro.petri.generators import figure1_net, figure4_net, muller
from repro.petri.invariants import (InvariantExplosion,
                                    invariant_support, invariant_token_sum,
                                    is_semipositive_invariant,
                                    minimal_semipositive_invariants)


class TestFigure1:
    def test_finds_both_paper_invariants(self):
        net = figure1_net()
        invariants = minimal_semipositive_invariants(net)
        as_sets = {invariant_support(net, inv) for inv in invariants}
        assert ("p1", "p2", "p4", "p6") in as_sets
        assert ("p1", "p3", "p5", "p7") in as_sets

    def test_exactly_two_minimal_invariants(self):
        assert len(minimal_semipositive_invariants(figure1_net())) == 2

    def test_weights_are_unit(self):
        net = figure1_net()
        for inv in minimal_semipositive_invariants(net):
            assert set(inv) <= {0, 1}

    def test_all_results_are_invariants(self):
        net = figure1_net()
        for inv in minimal_semipositive_invariants(net):
            assert is_semipositive_invariant(net, inv)

    def test_token_sum(self):
        net = figure1_net()
        for inv in minimal_semipositive_invariants(net):
            assert invariant_token_sum(net, inv) == 1


class TestFigure4:
    def test_six_smc_invariants(self):
        """Figure 3 shows six SMCs; each support is a minimal invariant."""
        net = figure4_net()
        invariants = minimal_semipositive_invariants(net)
        supports = {frozenset(invariant_support(net, inv))
                    for inv in invariants}
        assert frozenset({"p1", "p2", "p6", "p8"}) in supports
        assert frozenset({"p9", "p11", "p13", "p14"}) in supports
        assert frozenset({"p4", "p6", "p8", "p13", "p14"}) in supports


class TestGeneralNets:
    def test_pure_cycle_single_invariant(self):
        net = PetriNet()
        net.add_place("a", tokens=1)
        net.add_place("b")
        net.add_transition("t1", pre=["a"], post=["b"])
        net.add_transition("t2", pre=["b"], post=["a"])
        invariants = minimal_semipositive_invariants(net)
        assert invariants == [(1, 1)]

    def test_source_place_has_no_invariant(self):
        net = PetriNet()
        net.add_place("a", tokens=1)
        net.add_place("b")
        net.add_transition("t", pre=["a"], post=["a", "b"])
        invariants = minimal_semipositive_invariants(net)
        supports = {invariant_support(net, inv) for inv in invariants}
        assert ("b",) not in supports
        assert all("b" not in sup for sup in supports)

    def test_fork_join_minimal_invariants(self):
        """For a fork/join, {a,b} and {a,c} are minimal; the weighted sum
        2a + b + c is an invariant but not support-minimal."""
        net = PetriNet()
        net.add_place("a", tokens=1)
        net.add_place("b")
        net.add_place("c")
        net.add_transition("t1", pre=["a"], post=["b", "c"])
        net.add_transition("t2", pre=["b", "c"], post=["a"])
        invariants = minimal_semipositive_invariants(net)
        assert sorted(invariants) == [(1, 0, 1), (1, 1, 0)]
        assert is_semipositive_invariant(net, (2, 1, 1))

    def test_muller_pairs_are_invariants(self):
        net = muller(2)
        invariants = minimal_semipositive_invariants(net)
        supports = {frozenset(invariant_support(net, inv))
                    for inv in invariants}
        for i in range(4):
            assert frozenset({f"y{i}_0", f"y{i}_1"}) in supports

    def test_is_semipositive_rejects_zero_and_negative(self):
        net = figure1_net()
        assert not is_semipositive_invariant(net, [0] * 7)
        assert not is_semipositive_invariant(net, [-1, 1, 0, 1, 0, 1, 0])

    def test_is_semipositive_wrong_length(self):
        with pytest.raises(ValueError):
            is_semipositive_invariant(figure1_net(), [1, 1])

    def test_explosion_guard(self):
        with pytest.raises(InvariantExplosion):
            minimal_semipositive_invariants(figure4_net(), max_rows=1)
