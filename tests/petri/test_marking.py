"""Unit tests for Marking."""

import pytest

from repro.petri import Marking


class TestConstruction:
    def test_from_iterable(self):
        m = Marking(["p1", "p2"])
        assert m["p1"] == 1
        assert m["p2"] == 1
        assert m["p3"] == 0

    def test_from_mapping(self):
        m = Marking({"p1": 2, "p2": 0})
        assert m["p1"] == 2
        assert "p2" not in m

    def test_from_marking(self):
        m = Marking({"p1": 1})
        assert Marking(m) == m

    def test_duplicates_accumulate(self):
        m = Marking(["p1", "p1"])
        assert m["p1"] == 2

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Marking({"p1": -1})

    def test_empty(self):
        m = Marking()
        assert len(m) == 0
        assert m.total_tokens() == 0


class TestIdentity:
    def test_equality_ignores_zero_counts(self):
        assert Marking({"p1": 1, "p2": 0}) == Marking({"p1": 1})

    def test_hashable(self):
        seen = {Marking(["p1"]), Marking(["p1"]), Marking(["p2"])}
        assert len(seen) == 2

    def test_order_independent(self):
        assert Marking(["a", "b"]) == Marking(["b", "a"])

    def test_not_equal_to_other_types(self):
        assert Marking(["p1"]) != {"p1": 1}


class TestViews:
    def test_support(self):
        assert Marking({"p1": 2, "p2": 1}).support == {"p1", "p2"}

    def test_total_tokens(self):
        assert Marking({"p1": 2, "p2": 1}).total_tokens() == 3

    def test_is_safe(self):
        assert Marking({"p1": 1}).is_safe()
        assert not Marking({"p1": 2}).is_safe()

    def test_vector(self):
        m = Marking({"p2": 1})
        assert m.vector(["p1", "p2", "p3"]) == (0, 1, 0)

    def test_as_dict_is_copy(self):
        m = Marking({"p1": 1})
        d = m.as_dict()
        d["p1"] = 5
        assert m["p1"] == 1

    def test_iteration_and_items(self):
        m = Marking({"b": 1, "a": 2})
        assert list(m) == ["a", "b"]
        assert list(m.items()) == [("a", 2), ("b", 1)]

    def test_get_with_default(self):
        m = Marking({"a": 1})
        assert m.get("a") == 1
        assert m.get("zzz", 7) == 7


class TestTokenGame:
    def test_add(self):
        m = Marking(["p1"]).add(["p2", "p2"])
        assert m == Marking({"p1": 1, "p2": 2})

    def test_remove(self):
        m = Marking({"p1": 2}).remove(["p1"])
        assert m == Marking({"p1": 1})

    def test_remove_from_empty_raises(self):
        with pytest.raises(ValueError):
            Marking().remove(["p1"])

    def test_add_remove_roundtrip(self):
        m = Marking(["p1", "p2"])
        assert m.add(["p3"]).remove(["p3"]) == m

    def test_immutability(self):
        m = Marking(["p1"])
        m.add(["p2"])
        assert "p2" not in m


class TestRepr:
    def test_repr_empty(self):
        assert repr(Marking()) == "Marking({})"

    def test_repr_multiset(self):
        assert "p1*2" in repr(Marking({"p1": 2}))
        assert "p2" in repr(Marking({"p2": 1}))
