"""Unit tests for PetriNet structure and token game."""

import pytest

from repro.petri import Marking, PetriNet, PetriNetError
from repro.petri.generators import figure1_net


@pytest.fixture
def simple():
    """p1 -> t1 -> p2 -> t2 -> p1 (a two-place cycle)."""
    net = PetriNet("simple")
    net.add_place("p1", tokens=1)
    net.add_place("p2")
    net.add_transition("t1", pre=["p1"], post=["p2"])
    net.add_transition("t2", pre=["p2"], post=["p1"])
    return net


class TestConstruction:
    def test_places_and_transitions_ordered(self, simple):
        assert simple.places == ("p1", "p2")
        assert simple.transitions == ("t1", "t2")

    def test_duplicate_place_rejected(self, simple):
        with pytest.raises(PetriNetError):
            simple.add_place("p1")

    def test_place_transition_name_clash_rejected(self, simple):
        with pytest.raises(PetriNetError):
            simple.add_transition("p1")
        with pytest.raises(PetriNetError):
            simple.add_place("t1")

    def test_negative_tokens_rejected(self):
        net = PetriNet()
        with pytest.raises(PetriNetError):
            net.add_place("p", tokens=-1)

    def test_arc_must_be_bipartite(self, simple):
        with pytest.raises(PetriNetError):
            simple.add_arc("p1", "p2")
        with pytest.raises(PetriNetError):
            simple.add_arc("t1", "t2")

    def test_arc_unknown_node(self, simple):
        with pytest.raises(PetriNetError):
            simple.add_arc("p1", "nope")

    def test_add_places_bulk(self):
        net = PetriNet()
        net.add_places(["a", "b", "c"])
        assert net.places == ("a", "b", "c")

    def test_set_initial(self, simple):
        simple.set_initial({"p2": 1})
        assert simple.initial_marking == Marking(["p2"])

    def test_set_initial_unknown_place(self, simple):
        with pytest.raises(PetriNetError):
            simple.set_initial({"zzz": 1})

    def test_validate_isolated_transition(self):
        net = PetriNet()
        net.add_transition("t")
        with pytest.raises(PetriNetError):
            net.validate()

    def test_validate_ok(self, simple):
        simple.validate()


class TestStructureQueries:
    def test_preset_postset_of_transition(self):
        net = figure1_net()
        assert net.preset("t7") == {"p6", "p7"}
        assert net.postset("t7") == {"p1"}

    def test_preset_postset_of_place(self):
        net = figure1_net()
        assert net.preset("p1") == {"t7"}
        assert net.postset("p1") == {"t1", "t2"}

    def test_preset_unknown_node(self, simple):
        with pytest.raises(PetriNetError):
            simple.preset("zzz")

    def test_is_place_is_transition(self, simple):
        assert simple.is_place("p1")
        assert not simple.is_place("t1")
        assert simple.is_transition("t1")

    def test_arcs_enumeration(self, simple):
        assert set(simple.arcs()) == {
            ("p1", "t1"), ("t1", "p2"), ("p2", "t2"), ("t2", "p1")}

    def test_to_networkx(self):
        graph = figure1_net().to_networkx()
        assert graph.number_of_nodes() == 14
        assert graph.nodes["p1"]["kind"] == "place"
        assert graph.nodes["t1"]["kind"] == "transition"

    def test_copy_is_independent(self, simple):
        dup = simple.copy("dup")
        dup.add_place("p3")
        assert "p3" not in simple.places
        assert dup.initial_marking == simple.initial_marking


class TestTokenGame:
    def test_enabled_at_initial(self, simple):
        m = simple.initial_marking
        assert simple.is_enabled(m, "t1")
        assert not simple.is_enabled(m, "t2")
        assert simple.enabled_transitions(m) == ["t1"]

    def test_fire_moves_token(self, simple):
        m = simple.fire(simple.initial_marking, "t1")
        assert m == Marking(["p2"])

    def test_fire_disabled_raises(self, simple):
        with pytest.raises(PetriNetError):
            simple.fire(simple.initial_marking, "t2")

    def test_fire_unknown_transition(self, simple):
        with pytest.raises(PetriNetError):
            simple.fire(simple.initial_marking, "zzz")

    def test_fire_sequence(self, simple):
        m = simple.fire_sequence(simple.initial_marking,
                                 ["t1", "t2", "t1"])
        assert m == Marking(["p2"])

    def test_figure1_feasible_sequence(self):
        net = figure1_net()
        m = net.fire_sequence(net.initial_marking, ["t1", "t3", "t4", "t7"])
        assert m == net.initial_marking

    def test_fork_join(self):
        net = figure1_net()
        m = net.fire(net.initial_marking, "t1")
        assert m == Marking(["p2", "p3"])
        assert set(net.enabled_transitions(m)) == {"t3", "t4"}


class TestSubnets:
    def test_subnet_generated_by_places(self):
        net = figure1_net()
        sub = net.subnet_generated_by_places(["p1", "p2", "p4", "p6"])
        assert set(sub.places) == {"p1", "p2", "p4", "p6"}
        # t1..t3, t5, t7 touch those places; t4, t6 do not.
        assert set(sub.transitions) == {"t1", "t2", "t3", "t5", "t7"}
        assert sub.initial_marking == Marking(["p1"])

    def test_subnet_is_state_machine(self):
        net = figure1_net()
        sub = net.subnet_generated_by_places(["p1", "p2", "p4", "p6"])
        assert sub.is_state_machine()
        assert sub.is_strongly_connected()

    def test_full_net_not_state_machine(self):
        assert not figure1_net().is_state_machine()

    def test_subnet_unknown_place(self, simple):
        with pytest.raises(PetriNetError):
            simple.subnet_generated_by_places(["zzz"])

    def test_non_strongly_connected(self):
        net = PetriNet()
        net.add_place("a", tokens=1)
        net.add_place("b")
        net.add_transition("t", pre=["a"], post=["b"])
        assert net.is_state_machine()
        assert not net.is_strongly_connected()
