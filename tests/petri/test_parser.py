"""Unit tests for the .pnet text format."""

import io

import pytest

from repro.petri import Marking
from repro.petri.generators import figure1_net, figure4_net, muller
from repro.petri.parser import ParseError, dumps, load, loads, save


class TestRoundtrip:
    @pytest.mark.parametrize("factory", [figure1_net, figure4_net,
                                         lambda: muller(3)])
    def test_roundtrip_preserves_structure(self, factory):
        net = factory()
        copy = loads(dumps(net))
        assert copy.name == net.name
        assert copy.places == net.places
        assert copy.transitions == net.transitions
        assert set(copy.arcs()) == set(net.arcs())
        assert copy.initial_marking == net.initial_marking

    def test_file_roundtrip(self, tmp_path):
        net = figure1_net()
        path = tmp_path / "fig1.pnet"
        save(net, path)
        assert load(path).places == net.places

    def test_stream_load(self):
        net = load(io.StringIO(dumps(figure1_net())))
        assert net.name == "figure1"


class TestParsing:
    def test_comments_and_blank_lines(self):
        net = loads("""
        # a comment
        net demo
        place a 1   # trailing comment
        place b
        transition t
        arc a t
        arc t b
        """)
        assert net.name == "demo"
        assert net.initial_marking == Marking(["a"])

    def test_multi_token_place(self):
        net = loads("net x\nplace a 3\n")
        assert net.initial_marking == Marking({"a": 3})

    def test_unknown_directive(self):
        with pytest.raises(ParseError):
            loads("frobnicate a b\n")

    def test_bad_arc(self):
        with pytest.raises(ParseError):
            loads("net x\nplace a\narc a\n")

    def test_bad_tokens(self):
        with pytest.raises(ParseError):
            loads("net x\nplace a lots\n")

    def test_duplicate_net_directive(self):
        with pytest.raises(ParseError):
            loads("net x\nnet y\n")

    def test_arc_between_places_rejected(self):
        with pytest.raises(ParseError):
            loads("net x\nplace a\nplace b\narc a b\n")

    def test_error_reports_line_number(self):
        with pytest.raises(ParseError, match="line 3"):
            loads("net x\nplace a\nbogus\n")
