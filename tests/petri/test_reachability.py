"""Unit tests for explicit reachability analysis."""

import pytest

from repro.petri import (Marking, PetriNet, ReachabilityGraph,
                         StateExplosion, UnsafeNet, assert_safe,
                         count_reachable_markings, find_deadlock)
from repro.petri.generators import FIGURE1_MARKINGS, figure1_net, figure4_net


class TestFigure1:
    def test_eight_markings(self):
        assert count_reachable_markings(figure1_net()) == 8

    def test_marking_supports_match_paper(self):
        rg = ReachabilityGraph(figure1_net())
        assert rg.marking_supports() == set(FIGURE1_MARKINGS)

    def test_no_deadlocks(self):
        assert find_deadlock(figure1_net()) is None

    def test_successors_of_initial(self):
        rg = ReachabilityGraph(figure1_net())
        succ = dict(rg.successors(rg.initial))
        assert succ == {"t1": Marking(["p2", "p3"]),
                        "t2": Marking(["p4", "p5"])}

    def test_contains(self):
        rg = ReachabilityGraph(figure1_net())
        assert Marking(["p6", "p7"]) in rg
        assert Marking(["p2", "p5"]) not in rg

    def test_is_safe(self):
        assert ReachabilityGraph(figure1_net()).is_safe()

    def test_place_bound(self):
        rg = ReachabilityGraph(figure1_net())
        assert rg.place_bound("p1") == 1

    def test_to_networkx(self):
        graph = ReachabilityGraph(figure1_net()).to_networkx()
        assert graph.number_of_nodes() == 8
        assert graph.number_of_edges() == 11  # Figure 1.b has 11 arcs

    def test_firing_sequences(self):
        rg = ReachabilityGraph(figure1_net())
        seqs = set(rg.firing_sequences(2))
        assert () in seqs
        assert ("t1",) in seqs
        assert ("t1", "t3") in seqs
        assert ("t2", "t1") not in seqs


class TestFigure4:
    def test_twentytwo_markings(self):
        """The paper states the Figure 4 net has 22 reachable markings."""
        assert count_reachable_markings(figure4_net()) == 22

    def test_deadlock_exists(self):
        """Classic dining philosophers: both grab their right fork."""
        dead = find_deadlock(figure4_net())
        assert dead is not None
        # In the deadlock every philosopher holds exactly one fork (both
        # right forks p6/p12, or both left forks p7/p13).
        assert (dead.support >= {"p6", "p12"}
                or dead.support >= {"p7", "p13"})


class TestBudgetsAndSafety:
    def test_state_explosion(self):
        with pytest.raises(StateExplosion):
            ReachabilityGraph(figure4_net(), max_markings=5)

    def test_unsafe_net_detected(self):
        net = PetriNet()
        net.add_place("a", tokens=1)
        net.add_place("b")
        net.add_transition("t1", pre=["a"], post=["a", "b"])
        net.add_transition("t2", pre=["b"], post=["b", "b"])
        with pytest.raises(UnsafeNet):
            assert_safe(net)

    def test_unsafe_initial_marking_detected(self):
        net = PetriNet()
        net.add_place("a", tokens=2)
        net.add_transition("t", pre=["a"], post=["a"])
        with pytest.raises(UnsafeNet):
            ReachabilityGraph(net)

    def test_unsafe_allowed_when_not_required(self):
        net = PetriNet()
        net.add_place("a", tokens=1)
        net.add_place("b", tokens=1)
        net.add_transition("t", pre=["a"], post=["b"])
        rg = ReachabilityGraph(net, max_markings=10, require_safe=False)
        assert not rg.is_safe()
        assert rg.place_bound("b") == 2

    def test_empty_net_single_marking(self):
        net = PetriNet()
        net.add_place("a", tokens=1)
        rg = ReachabilityGraph(net)
        assert len(rg) == 1
        assert rg.deadlocks() == [Marking(["a"])]
