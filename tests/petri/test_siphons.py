"""Unit tests for siphon/trap analysis."""

import pytest

from repro.petri import Marking, PetriNet, PetriNetError, find_deadlock
from repro.petri.generators import figure1_net, figure4_net, muller
from repro.petri.siphons import (commoner_condition,
                                 empty_siphon_in_deadlock, is_siphon,
                                 is_trap, largest_siphon_within,
                                 largest_trap_within, minimal_siphons)


class TestPredicates:
    def test_smc_supports_are_siphons_and_traps(self):
        """A strongly connected SMC's place set is both."""
        net = figure1_net()
        for support in (("p1", "p2", "p4", "p6"), ("p1", "p3", "p5", "p7")):
            assert is_siphon(net, support)
            assert is_trap(net, support)

    def test_empty_set_is_neither(self):
        net = figure1_net()
        assert not is_siphon(net, [])
        assert not is_trap(net, [])

    def test_non_siphon(self):
        net = figure1_net()
        # p2 alone: t1 feeds it but takes from p1 (outside).
        assert not is_siphon(net, ["p2"])

    def test_siphon_only(self):
        """A source-consumed place set: siphon but not trap."""
        net = PetriNet()
        net.add_place("a", tokens=1)
        net.add_place("b")
        net.add_transition("t", pre=["a"], post=["b"])
        assert is_siphon(net, ["a"])      # pre(a) = {} subset of post
        assert not is_trap(net, ["a"])    # post(a) = {t} not in pre(a)
        assert is_trap(net, ["b"])
        assert not is_siphon(net, ["b"])


class TestLargestWithin:
    def test_whole_place_set(self):
        net = figure1_net()
        assert largest_siphon_within(net, net.places) == set(net.places)
        assert largest_trap_within(net, net.places) == set(net.places)

    def test_pruning_to_empty(self):
        net = figure1_net()
        assert largest_siphon_within(net, ["p2", "p3"]) == frozenset()
        assert largest_trap_within(net, ["p2"]) == frozenset()

    def test_finds_embedded_siphon(self):
        net = figure1_net()
        # p7 gets pruned: its input t6 takes from p5, outside the set.
        subset = ["p1", "p2", "p4", "p6", "p7"]
        assert largest_siphon_within(net, subset) == \
            frozenset({"p1", "p2", "p4", "p6"})

    def test_superset_of_smc_can_still_be_siphon(self):
        """Adding p3 keeps the siphon property (t1 feeds p3 from p1)."""
        net = figure1_net()
        subset = ["p1", "p2", "p4", "p6", "p3"]
        assert largest_siphon_within(net, subset) == frozenset(subset)
        assert is_siphon(net, subset)


class TestMinimalSiphons:
    def test_figure1(self):
        """The two SMC supports are exactly the minimal siphons."""
        assert set(minimal_siphons(figure1_net())) == {
            frozenset({"p1", "p2", "p4", "p6"}),
            frozenset({"p1", "p3", "p5", "p7"})}

    def test_minimality(self):
        siphons = minimal_siphons(figure4_net())
        for i, siphon_a in enumerate(siphons):
            for j, siphon_b in enumerate(siphons):
                if i != j:
                    assert not siphon_a < siphon_b

    def test_all_results_are_siphons(self):
        net = figure4_net()
        for siphon in minimal_siphons(net):
            assert is_siphon(net, siphon)

    def test_budget_guard(self):
        with pytest.raises(PetriNetError):
            minimal_siphons(figure4_net(), limit=3)


class TestCommoner:
    def test_figure1_satisfies_commoner(self):
        """Free-choice and deadlock-free: Commoner must hold."""
        assert commoner_condition(figure1_net())

    def test_philosophers_violate_commoner(self):
        """The philosophers deadlock; some siphon has no marked trap."""
        assert not commoner_condition(figure4_net())

    def test_muller_satisfies_commoner(self):
        assert commoner_condition(muller(2))


class TestDeadlockExplanation:
    def test_deadlock_explained_by_empty_siphon(self):
        net = figure4_net()
        dead = find_deadlock(net)
        siphon = empty_siphon_in_deadlock(net, dead)
        assert siphon
        assert is_siphon(net, siphon)
        assert all(dead[p] == 0 for p in siphon)

    def test_live_marking_has_no_explanation(self):
        net = figure4_net()
        assert empty_siphon_in_deadlock(net, net.initial_marking) is None
