"""Unit tests for State Machine Component extraction."""

import pytest

from repro.petri import (PetriNet, coverage, find_smcs, is_smc_decomposable,
                         single_token_smcs, smc_from_places,
                         smcs_from_invariants)
from repro.petri.generators import (FIGURE1_SMC_PLACES, FIGURE3_SMC_PLACES,
                                    figure1_net, figure4_net, muller,
                                    slotted_ring)
from repro.petri.smc import smc_covering_place_lp


class TestValidation:
    def test_figure1_smcs_validate(self):
        net = figure1_net()
        for places in FIGURE1_SMC_PLACES:
            smc = smc_from_places(net, places)
            assert smc is not None
            assert smc.token_count == 1
            assert smc.place_set == set(places)

    def test_not_state_machine_rejected(self):
        net = figure1_net()
        # p6, p7 join at t7 (two inputs): not an SM inside {p6, p7, p1}.
        assert smc_from_places(net, ["p1", "p6", "p7"]) is None

    def test_not_strongly_connected_rejected(self):
        net = figure1_net()
        assert smc_from_places(net, ["p2", "p6"]) is None

    def test_empty_subset(self):
        assert smc_from_places(figure1_net(), []) is None

    def test_transitions_recorded(self):
        net = figure1_net()
        smc = smc_from_places(net, ("p1", "p2", "p4", "p6"))
        assert set(smc.transitions) == {"t1", "t2", "t3", "t5", "t7"}

    def test_len_and_repr(self):
        smc = smc_from_places(figure1_net(), ("p1", "p2", "p4", "p6"))
        assert len(smc) == 4
        assert "p1" in repr(smc)


class TestDiscovery:
    def test_figure1_discovery(self):
        components = smcs_from_invariants(figure1_net())
        assert {c.place_set for c in components} == {
            frozenset(places) for places in FIGURE1_SMC_PLACES}

    def test_figure3_decomposition(self):
        """All six SMCs of Figure 3 are discovered."""
        components = find_smcs(figure4_net(), strategy="farkas")
        assert {c.place_set for c in components} == {
            frozenset(places) for places in FIGURE3_SMC_PLACES}

    def test_figure4_decomposable(self):
        net = figure4_net()
        components = find_smcs(net)
        assert is_smc_decomposable(net, components)

    def test_coverage_partition(self):
        net = figure1_net()
        components = find_smcs(net)
        covered, uncovered = coverage(net, components)
        assert covered == set(net.places)
        assert uncovered == frozenset()

    def test_partial_coverage(self):
        net = figure1_net()
        components = find_smcs(net)[:1]
        covered, uncovered = coverage(net, components)
        assert covered and uncovered
        assert covered | uncovered == set(net.places)

    def test_single_token_filter(self):
        net = figure4_net()
        components = find_smcs(net, strategy="farkas")
        assert single_token_smcs(components) == components

    def test_muller_pair_smcs(self):
        net = muller(3)
        components = find_smcs(net, strategy="farkas")
        assert is_smc_decomposable(net, components)
        assert all(len(c) == 2 for c in components)

    def test_slotted_ring_decomposition(self):
        net = slotted_ring(2)
        components = find_smcs(net, strategy="farkas")
        assert is_smc_decomposable(net, components)
        supports = {c.place_set for c in components}
        # The designed decomposition (controller cycles + wire pairs) must
        # be among the discovered SMCs; Farkas may find further ones (e.g.
        # mixed offer/ack/controller cycles), which is correct.
        for i in range(2):
            assert frozenset({f"s{i}_c0", f"s{i}_c1",
                              f"s{i}_c2", f"s{i}_c3"}) in supports
            for wire in ("p", "a", "b"):
                assert frozenset({f"s{i}_{wire}0", f"s{i}_{wire}1"}) \
                    in supports

    def test_unknown_strategy(self):
        with pytest.raises(ValueError):
            find_smcs(figure1_net(), strategy="magic")


class TestLPExtraction:
    def test_lp_covers_each_figure1_place(self):
        net = figure1_net()
        for place in net.places:
            smc = smc_covering_place_lp(net, place)
            assert smc is not None
            assert place in smc.place_set
            assert smc.token_count == 1

    def test_lp_respects_forbidden_places(self):
        net = figure1_net()
        # Every invariant through p2 includes p4 (it is a combination of
        # the two minimal invariants), so forbidding p4 is infeasible.
        assert smc_covering_place_lp(
            net, "p2", forbid=frozenset({"p4"})) is None
        # Forbidding p3 is fine: SM1 = {p1, p2, p4, p6} avoids it.
        smc = smc_covering_place_lp(net, "p2", forbid=frozenset({"p3"}))
        assert smc is not None
        assert "p3" not in smc.place_set

    def test_lp_unknown_place(self):
        from repro.petri import PetriNetError
        with pytest.raises(PetriNetError):
            smc_covering_place_lp(figure1_net(), "zzz")

    def test_lp_returns_none_when_impossible(self):
        net = PetriNet()
        net.add_place("a", tokens=1)
        net.add_place("b")
        net.add_transition("t", pre=["a"], post=["a", "b"])
        assert smc_covering_place_lp(net, "b") is None

    def test_lp_strategy_on_figure4(self):
        net = figure4_net()
        components = find_smcs(net, strategy="lp")
        covered, _ = coverage(net, components)
        assert covered == set(net.places)
