"""Unit tests for the signal transition graph layer."""

import pytest

from repro.petri import (PetriNetError, ReachabilityGraph, find_smcs,
                         is_smc_decomposable)
from repro.petri.stg import STG, c_element, pipeline_stage


class TestConstruction:
    def test_signals_and_edges(self):
        stg = STG("demo")
        stg.add_signal("a")
        stg.add_signal("b", initial=True)
        edge = stg.rise("a", {"b": True})
        assert stg.signals == ("a", "b")
        assert edge.label == "a+"
        assert stg.initial_state() == {"a": False, "b": True}

    def test_duplicate_signal_rejected(self):
        stg = STG()
        stg.add_signal("a")
        with pytest.raises(PetriNetError):
            stg.add_signal("a")

    def test_unknown_signal_rejected(self):
        stg = STG()
        stg.add_signal("a")
        with pytest.raises(PetriNetError):
            stg.rise("b")
        with pytest.raises(PetriNetError):
            stg.rise("a", {"zzz": True})

    def test_self_guard_rejected(self):
        stg = STG()
        stg.add_signal("a")
        with pytest.raises(PetriNetError):
            stg.rise("a", {"a": False})

    def test_edge_labels(self):
        stg = STG()
        stg.add_signal("req")
        assert stg.fall("req").label == "req-"


class TestExpansion:
    def test_complementary_pairs(self):
        stg = STG("pair")
        stg.add_signal("s", initial=True)
        net = stg.to_petri_net()
        assert set(net.places) == {"s_0", "s_1"}
        assert net.initial_marking["s_1"] == 1
        assert net.initial_marking["s_0"] == 0

    def test_guards_become_read_arcs(self):
        stg = STG()
        stg.add_signal("a")
        stg.add_signal("b")
        stg.rise("a", {"b": False})
        net = stg.to_petri_net()
        trans = net.transitions[0]
        assert net.preset(trans) == {"a_0", "b_0"}
        assert net.postset(trans) == {"a_1", "b_0"}

    def test_duplicate_edges_get_unique_names(self):
        stg = STG()
        stg.add_signal("a")
        stg.add_signal("b")
        stg.rise("a", {"b": False})
        stg.rise("a", {"b": True})
        net = stg.to_petri_net()
        assert len(net.transitions) == 2

    def test_expansion_is_safe(self):
        net = c_element().to_petri_net()
        graph = ReachabilityGraph(net)
        assert graph.is_safe()


class TestCElement:
    def test_state_space(self):
        net = c_element().to_petri_net()
        graph = ReachabilityGraph(net)
        # a, b, c with C-element semantics: not all 8 combinations allow
        # progress the same way, but all are reachable with eager inputs.
        assert 4 <= len(graph) <= 8
        assert not graph.deadlocks()

    def test_smc_decomposable(self):
        net = c_element().to_petri_net()
        components = find_smcs(net)
        assert is_smc_decomposable(net, components)
        assert all(len(c) == 2 for c in components)

    def test_output_rises_only_when_both_inputs_high(self):
        net = c_element().to_petri_net()
        graph = ReachabilityGraph(net)
        for index, marking in enumerate(graph.markings):
            for trans, successor in graph.successors(marking):
                if trans == "t_c_up":
                    assert "a_1" in marking and "b_1" in marking


class TestPipelineStage:
    def test_safe_live_and_decomposable(self):
        net = pipeline_stage().to_petri_net()
        graph = ReachabilityGraph(net)
        assert graph.is_safe()
        assert not graph.deadlocks()
        components = find_smcs(net)
        assert is_smc_decomposable(net, components)

    def test_dense_encoding_halves_variables(self):
        from repro.encoding import ImprovedEncoding, SparseEncoding
        net = pipeline_stage().to_petri_net()
        assert ImprovedEncoding(net).num_variables \
            == SparseEncoding(net).num_variables // 2

    def test_symbolic_traversal_matches_explicit(self):
        from repro.encoding import ImprovedEncoding
        from repro.symbolic import SymbolicNet, traverse
        net = pipeline_stage().to_petri_net()
        expected = len(ReachabilityGraph(net))
        result = traverse(SymbolicNet(ImprovedEncoding(net)))
        assert result.marking_count == expected

    def test_handshake_order(self):
        """a_in never acknowledges before r_out has risen."""
        net = pipeline_stage().to_petri_net()
        graph = ReachabilityGraph(net)
        for marking in graph.markings:
            if "a_in_1" in marking:
                # a_in high implies r_out rose at some point; with the
                # eager mirror it can only fall after r_out falls.
                pass  # structural: checked by the guard test below
        for marking in graph.markings:
            for trans, _ in graph.successors(marking):
                if trans == "t_a_in_up":
                    assert "r_out_1" in marking
