"""Unit tests for T-invariants and structural bounds."""

import pytest

from repro.petri import PetriNet, ReachabilityGraph
from repro.petri.generators import figure1_net, figure4_net, muller
from repro.petri.invariants import (is_structurally_safe, is_t_invariant,
                                    minimal_semipositive_t_invariants,
                                    structural_bound)


class TestTInvariants:
    def test_figure1_cycles(self):
        """The two firing cycles of the running example: t1 t3 t4 t7 and
        t2 t5 t6 t7."""
        net = figure1_net()
        invariants = minimal_semipositive_t_invariants(net)
        supports = {tuple(t for t, w in zip(net.transitions, weights)
                          if w > 0)
                    for weights in invariants}
        assert ("t1", "t3", "t4", "t7") in supports
        assert ("t2", "t5", "t6", "t7") in supports
        assert len(invariants) == 2

    def test_t_invariants_reproduce_marking(self):
        """Firing a T-invariant's transitions returns to the start."""
        net = figure1_net()
        marking = net.fire_sequence(net.initial_marking,
                                    ["t1", "t3", "t4", "t7"])
        assert marking == net.initial_marking

    def test_is_t_invariant(self):
        net = figure1_net()
        assert is_t_invariant(net, [1, 0, 1, 1, 0, 0, 1])
        assert not is_t_invariant(net, [1, 0, 0, 0, 0, 0, 0])
        # The sum of both cycles fires t7 twice.
        assert is_t_invariant(net, [1, 1, 1, 1, 1, 1, 2])

    def test_is_t_invariant_wrong_length(self):
        with pytest.raises(ValueError):
            is_t_invariant(figure1_net(), [1, 2])

    def test_philosopher_cycles(self):
        """Each philosopher's five transitions form a T-invariant."""
        net = figure4_net()
        invariants = minimal_semipositive_t_invariants(net)
        supports = {tuple(t for t, w in zip(net.transitions, weights)
                          if w > 0)
                    for weights in invariants}
        assert ("t1", "t2", "t3", "t4", "t5") in supports
        assert ("t6", "t7", "t8", "t9", "t10") in supports

    def test_acyclic_net_has_no_t_invariant(self):
        net = PetriNet()
        net.add_place("a", tokens=1)
        net.add_place("b")
        net.add_transition("t", pre=["a"], post=["b"])
        assert minimal_semipositive_t_invariants(net) == []


class TestStructuralBounds:
    def test_figure1_bounds_are_one(self):
        net = figure1_net()
        for place in net.places:
            assert structural_bound(net, place) == 1

    def test_structural_safety(self):
        assert is_structurally_safe(figure1_net())
        assert is_structurally_safe(figure4_net())
        assert is_structurally_safe(muller(2))

    def test_bound_matches_actual_bound(self):
        """The invariant bound is an upper bound on the real bound."""
        net = figure4_net()
        graph = ReachabilityGraph(net)
        for place in net.places:
            assert graph.place_bound(place) <= structural_bound(net, place)

    def test_uncovered_place_unbounded(self):
        net = PetriNet()
        net.add_place("a", tokens=1)
        net.add_place("b")
        net.add_transition("t", pre=["a"], post=["a", "b"])
        assert structural_bound(net, "b") is None
        assert not is_structurally_safe(net)

    def test_weighted_bound(self):
        """A two-token invariant gives bound 2."""
        net = PetriNet()
        net.add_place("a", tokens=2)
        net.add_place("b")
        net.add_transition("t1", pre=["a"], post=["b"])
        net.add_transition("t2", pre=["b"], post=["a"])
        assert structural_bound(net, "a") == 2
        assert not is_structurally_safe(net)

    def test_unknown_place(self):
        from repro.petri import PetriNetError
        with pytest.raises(PetriNetError):
            structural_bound(figure1_net(), "zzz")
