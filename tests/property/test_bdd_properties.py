"""Property-based tests for the BDD package.

Random boolean expression trees are evaluated both through the BDD and by
direct recursive evaluation over all assignments; every operation the
symbolic layer relies on is exercised under random structure, and the
manager invariants are re-validated after reordering and garbage
collection.
"""

import itertools

from hypothesis import given, settings, strategies as st

from repro.bdd import BDD, ONE, ZERO, variable
from repro.bdd.reorder import sift

NUM_VARS = 5
NAMES = [f"v{i}" for i in range(NUM_VARS)]


# --- random expression trees -------------------------------------------

def exprs():
    leaves = st.sampled_from([("var", i) for i in range(NUM_VARS)]
                             + [("const", False), ("const", True)])

    def extend(children):
        return st.one_of(
            st.tuples(st.just("not"), children),
            st.tuples(st.just("and"), children, children),
            st.tuples(st.just("or"), children, children),
            st.tuples(st.just("xor"), children, children),
            st.tuples(st.just("ite"), children, children, children),
        )

    return st.recursive(leaves, extend, max_leaves=12)


def eval_expr(expr, env):
    tag = expr[0]
    if tag == "var":
        return env[expr[1]]
    if tag == "const":
        return expr[1]
    if tag == "not":
        return not eval_expr(expr[1], env)
    if tag == "and":
        return eval_expr(expr[1], env) and eval_expr(expr[2], env)
    if tag == "or":
        return eval_expr(expr[1], env) or eval_expr(expr[2], env)
    if tag == "xor":
        return eval_expr(expr[1], env) != eval_expr(expr[2], env)
    if tag == "ite":
        return (eval_expr(expr[2], env) if eval_expr(expr[1], env)
                else eval_expr(expr[3], env))
    raise AssertionError(tag)


def build_bdd(bdd, expr):
    tag = expr[0]
    if tag == "var":
        return bdd.var_node(expr[1])
    if tag == "const":
        return ONE if expr[1] else ZERO
    if tag == "not":
        return bdd.apply_not(build_bdd(bdd, expr[1]))
    if tag == "and":
        return bdd.apply_and(build_bdd(bdd, expr[1]), build_bdd(bdd, expr[2]))
    if tag == "or":
        return bdd.apply_or(build_bdd(bdd, expr[1]), build_bdd(bdd, expr[2]))
    if tag == "xor":
        return bdd.apply_xor(build_bdd(bdd, expr[1]), build_bdd(bdd, expr[2]))
    if tag == "ite":
        return bdd.ite(build_bdd(bdd, expr[1]), build_bdd(bdd, expr[2]),
                       build_bdd(bdd, expr[3]))
    raise AssertionError(tag)


def all_envs():
    for values in itertools.product([False, True], repeat=NUM_VARS):
        yield dict(enumerate(values))


@settings(max_examples=120, deadline=None)
@given(exprs())
def test_bdd_matches_brute_force(expr):
    bdd = BDD(var_names=NAMES)
    node = build_bdd(bdd, expr)
    for env in all_envs():
        assert bdd.eval_node(node, env) == eval_expr(expr, env)


@settings(max_examples=120, deadline=None)
@given(exprs())
def test_satcount_matches_brute_force(expr):
    bdd = BDD(var_names=NAMES)
    node = build_bdd(bdd, expr)
    expected = sum(1 for env in all_envs() if eval_expr(expr, env))
    assert bdd.satcount(node, nvars=NUM_VARS) == expected


@settings(max_examples=80, deadline=None)
@given(exprs(), st.integers(min_value=0, max_value=NUM_VARS - 1))
def test_exists_matches_brute_force(expr, var):
    bdd = BDD(var_names=NAMES)
    node = build_bdd(bdd, expr)
    quantified = bdd.exists(node, [var])
    for env in all_envs():
        env0, env1 = dict(env), dict(env)
        env0[var], env1[var] = False, True
        expected = eval_expr(expr, env0) or eval_expr(expr, env1)
        assert bdd.eval_node(quantified, env) == expected


@settings(max_examples=80, deadline=None)
@given(exprs(), st.integers(min_value=0, max_value=NUM_VARS - 1))
def test_forall_matches_brute_force(expr, var):
    bdd = BDD(var_names=NAMES)
    node = build_bdd(bdd, expr)
    quantified = bdd.forall(node, [var])
    for env in all_envs():
        env0, env1 = dict(env), dict(env)
        env0[var], env1[var] = False, True
        expected = eval_expr(expr, env0) and eval_expr(expr, env1)
        assert bdd.eval_node(quantified, env) == expected


@settings(max_examples=60, deadline=None)
@given(exprs(), exprs(),
       st.sets(st.integers(min_value=0, max_value=NUM_VARS - 1), max_size=3))
def test_and_exists_equals_composition(left, right, variables):
    bdd = BDD(var_names=NAMES)
    u = build_bdd(bdd, left)
    v = build_bdd(bdd, right)
    assert (bdd.and_exists(u, v, variables)
            == bdd.exists(bdd.apply_and(u, v), variables))


@settings(max_examples=60, deadline=None)
@given(exprs(), exprs(),
       st.sets(st.integers(min_value=0, max_value=NUM_VARS - 1), max_size=3),
       st.permutations(list(range(NUM_VARS))))
def test_and_exists_consistent_across_reordering(left, right, variables,
                                                 order):
    """The dedicated relational-product cache must be invalidated by
    variable reordering: the fused product stays equal to the
    materialised composition before and after ``set_order``."""
    bdd = BDD(var_names=NAMES)
    u = build_bdd(bdd, left)
    v = build_bdd(bdd, right)
    before = bdd.and_exists(u, v, variables)
    bdd.ref(u), bdd.ref(v), bdd.ref(before)
    bdd.set_order(order)
    after = bdd.and_exists(u, v, variables)
    assert after == before
    assert after == bdd.exists(bdd.apply_and(u, v), variables)


@settings(max_examples=60, deadline=None)
@given(exprs(), exprs(),
       st.sets(st.integers(min_value=0, max_value=NUM_VARS - 1), max_size=5))
def test_and_exists_matches_brute_force(left, right, variables):
    """Semantic check against direct evaluation, any quantified set."""
    bdd = BDD(var_names=NAMES)
    u = build_bdd(bdd, left)
    v = build_bdd(bdd, right)
    product = bdd.and_exists(u, v, variables)
    for env in all_envs():
        expected = False
        for qvalues in itertools.product([False, True],
                                         repeat=len(variables)):
            probe = dict(env)
            probe.update(zip(sorted(variables), qvalues))
            if eval_expr(left, probe) and eval_expr(right, probe):
                expected = True
                break
        assert bdd.eval_node(product, env) == expected


@settings(max_examples=80, deadline=None)
@given(exprs(),
       st.sets(st.integers(min_value=0, max_value=NUM_VARS - 1), max_size=3))
def test_toggle_matches_flipped_evaluation(expr, variables):
    bdd = BDD(var_names=NAMES)
    node = build_bdd(bdd, expr)
    toggled = bdd.toggle(node, variables)
    for env in all_envs():
        flipped = {v: (not val if v in variables else val)
                   for v, val in env.items()}
        assert bdd.eval_node(toggled, env) == eval_expr(expr, flipped)


@settings(max_examples=80, deadline=None)
@given(exprs(), st.dictionaries(
    st.integers(min_value=0, max_value=NUM_VARS - 1), st.booleans(),
    max_size=NUM_VARS))
def test_cofactor_matches_brute_force(expr, assignment):
    bdd = BDD(var_names=NAMES)
    node = build_bdd(bdd, expr)
    restricted = bdd.cofactor(node, assignment)
    for env in all_envs():
        fixed = dict(env)
        fixed.update(assignment)
        assert bdd.eval_node(restricted, env) == eval_expr(expr, fixed)


@settings(max_examples=60, deadline=None)
@given(exprs(), st.permutations(list(range(NUM_VARS))))
def test_set_order_preserves_semantics(expr, order):
    bdd = BDD(var_names=NAMES)
    node = build_bdd(bdd, expr)
    bdd.ref(node)
    bdd.set_order(order)
    bdd.assert_consistent()
    for env in all_envs():
        assert bdd.eval_node(node, env) == eval_expr(expr, env)


@settings(max_examples=40, deadline=None)
@given(st.lists(exprs(), min_size=1, max_size=4))
def test_sift_preserves_many_roots(expr_list):
    bdd = BDD(var_names=NAMES)
    handles = []
    for expr in expr_list:
        node = build_bdd(bdd, expr)
        bdd.ref(node)
        handles.append((expr, node))
    sift(bdd)
    bdd.assert_consistent()
    for expr, node in handles:
        for env in all_envs():
            assert bdd.eval_node(node, env) == eval_expr(expr, env)


@settings(max_examples=60, deadline=None)
@given(exprs(), exprs())
def test_gc_preserves_referenced_roots(left, right):
    bdd = BDD(var_names=NAMES)
    keep = build_bdd(bdd, left)
    bdd.ref(keep)
    build_bdd(bdd, right)  # becomes garbage
    bdd.collect_garbage()
    bdd.assert_consistent()
    for env in all_envs():
        assert bdd.eval_node(keep, env) == eval_expr(left, env)


@settings(max_examples=60, deadline=None)
@given(exprs())
def test_canonicity_double_build(expr):
    """Building the same function twice yields the same node id."""
    bdd = BDD(var_names=NAMES)
    assert build_bdd(bdd, expr) == build_bdd(bdd, expr)


@settings(max_examples=60, deadline=None)
@given(exprs())
def test_negation_is_complement(expr):
    bdd = BDD(var_names=NAMES)
    node = build_bdd(bdd, expr)
    negated = bdd.apply_not(node)
    assert bdd.apply_and(node, negated) == ZERO
    assert bdd.apply_or(node, negated) == ONE
    count = bdd.satcount(node, nvars=NUM_VARS)
    assert bdd.satcount(negated, nvars=NUM_VARS) == 2 ** NUM_VARS - count


@settings(max_examples=80, deadline=None)
@given(exprs(), exprs())
def test_restrict_agrees_on_care_set(func_expr, care_expr):
    """Coudert-Madre restrict: r & c == f & c for every care set."""
    bdd = BDD(var_names=NAMES)
    f = build_bdd(bdd, func_expr)
    care = build_bdd(bdd, care_expr)
    if care == ZERO:
        return
    r = bdd.restrict_cm(f, care)
    assert bdd.apply_and(r, care) == bdd.apply_and(f, care)


@settings(max_examples=60, deadline=None)
@given(exprs())
def test_restrict_by_self_is_tautological(expr):
    """f restricted to f is 1 wherever f holds."""
    bdd = BDD(var_names=NAMES)
    f = build_bdd(bdd, expr)
    if f == ZERO:
        return
    r = bdd.restrict_cm(f, f)
    assert bdd.apply_and(r, f) == f


@settings(max_examples=80, deadline=None)
@given(exprs(), exprs())
def test_restrict_is_idempotent(func_expr, care_expr):
    """Sibling substitution only reads f on the care set, so restricting
    an already-restricted function changes nothing."""
    bdd = BDD(var_names=NAMES)
    f = build_bdd(bdd, func_expr)
    care = build_bdd(bdd, care_expr)
    if care == ZERO:
        return
    r = bdd.restrict_cm(f, care)
    assert bdd.restrict_cm(r, care) == r


@settings(max_examples=60, deadline=None)
@given(exprs())
def test_restrict_constant_care_and_constant_function(expr):
    """A tautological care set is the identity; constants are fixpoints."""
    bdd = BDD(var_names=NAMES)
    f = build_bdd(bdd, expr)
    assert bdd.restrict_cm(f, ONE) == f
    care = build_bdd(bdd, expr)
    if care != ZERO:
        assert bdd.restrict_cm(ZERO, care) == ZERO
        assert bdd.restrict_cm(ONE, care) == ONE
