"""Property-based tests for the encoding schemes and symbolic images.

Random walks through the token game of the benchmark nets generate
reachable markings; every encoding must round-trip them, and the
symbolic one-step image must agree with the explicit successors from
arbitrary reachable frontiers.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.encoding import DenseEncoding, ImprovedEncoding, SparseEncoding
from repro.petri import ReachabilityGraph
from repro.petri.generators import figure1_net, figure4_net, muller
from repro.symbolic import SymbolicNet

NETS = {
    "figure1": figure1_net(),
    "figure4": figure4_net(),
    "muller2": muller(2),
}
GRAPHS = {name: ReachabilityGraph(net) for name, net in NETS.items()}
SCHEMES = [SparseEncoding, DenseEncoding, ImprovedEncoding]
ENCODINGS = {(name, scheme.__name__): scheme(net)
             for name, net in NETS.items() for scheme in SCHEMES}
SYMNETS = {key: SymbolicNet(enc) for key, enc in ENCODINGS.items()}

net_names = st.sampled_from(sorted(NETS))
scheme_names = st.sampled_from([s.__name__ for s in SCHEMES])


def random_marking(name, seed):
    graph = GRAPHS[name]
    return graph.markings[seed % len(graph.markings)]


@settings(max_examples=120, deadline=None)
@given(net_names, scheme_names, st.integers(min_value=0, max_value=10_000))
def test_reachable_markings_roundtrip(name, scheme, seed):
    encoding = ENCODINGS[(name, scheme)]
    marking = random_marking(name, seed)
    assignment = encoding.marking_to_assignment(marking)
    assert encoding.assignment_to_marking(assignment) == marking


@settings(max_examples=120, deadline=None)
@given(net_names, scheme_names, st.integers(min_value=0, max_value=10_000))
def test_characteristic_semantics(name, scheme, seed):
    """[p] holds on an encoded marking iff p is marked."""
    symnet = SYMNETS[(name, scheme)]
    marking = random_marking(name, seed)
    assignment = symnet.encoding.marking_to_assignment(marking)
    for place in symnet.net.places:
        assert symnet.places[place](assignment) == (place in marking)


@settings(max_examples=100, deadline=None)
@given(net_names, scheme_names, st.integers(min_value=0, max_value=10_000))
def test_enabling_semantics(name, scheme, seed):
    """E_t holds exactly when the token game enables t."""
    symnet = SYMNETS[(name, scheme)]
    net = NETS[name]
    marking = random_marking(name, seed)
    assignment = symnet.encoding.marking_to_assignment(marking)
    for transition in net.transitions:
        assert (symnet.enabling[transition](assignment)
                == net.is_enabled(marking, transition))


@settings(max_examples=60, deadline=None)
@given(net_names, scheme_names,
       st.lists(st.integers(min_value=0, max_value=10_000),
                min_size=1, max_size=4),
       st.booleans())
def test_image_matches_explicit_successors(name, scheme, seeds, toggle):
    """Symbolic one-step image of a random reachable frontier equals the
    union of explicit successors."""
    symnet = SYMNETS[(name, scheme)]
    net = NETS[name]
    markings = [random_marking(name, seed) for seed in seeds]
    frontier = None
    for marking in markings:
        minterm = symnet.marking_function(marking)
        frontier = minterm if frontier is None else (frontier | minterm)
    for transition in net.transitions:
        expected = {net.fire(m, transition).support
                    for m in markings if net.is_enabled(m, transition)}
        if toggle:
            image = symnet.image_toggle(frontier, transition)
        else:
            image = symnet.image(frontier, transition)
        actual = {m.support for m in symnet.markings_of(image)}
        assert actual == expected


@settings(max_examples=60, deadline=None)
@given(net_names, scheme_names, st.integers(min_value=0, max_value=10_000))
def test_preimage_contains_explicit_predecessor(name, scheme, seed):
    """Every explicit firing M -> M' puts M in pre(M')."""
    symnet = SYMNETS[(name, scheme)]
    net = NETS[name]
    marking = random_marking(name, seed)
    for transition in net.enabled_transitions(marking):
        successor = net.fire(marking, transition)
        pre = symnet.preimage(symnet.marking_function(successor),
                              transition)
        source = symnet.marking_function(marking)
        assert (source & pre) == source


@settings(max_examples=40, deadline=None)
@given(net_names, st.integers(min_value=0, max_value=10_000))
def test_schemes_agree_on_assignment_counts(name, seed):
    """All schemes represent each reachable marking by one assignment."""
    marking = random_marking(name, seed)
    for scheme in SCHEMES:
        symnet = SYMNETS[(name, scheme.__name__)]
        minterm = symnet.marking_function(marking)
        assert minterm.satcount(symnet.encoding.num_variables) == 1
