"""Property suite for the complement-edge negation identities.

With complement edges, negation is a bit flip and the classic boolean
identities must hold *structurally* (edge equality, not just semantic
equivalence) — and they must keep holding across every lifecycle event
that rewrites nodes in place: garbage collection, ``set_order`` and a
sifting pass.
"""

import itertools

from hypothesis import given, settings, strategies as st

from repro.bdd import BDD, ONE, ZERO
from repro.bdd.reorder import sift

NUM_VARS = 5
NAMES = [f"v{i}" for i in range(NUM_VARS)]


def exprs():
    leaves = st.sampled_from([("var", i) for i in range(NUM_VARS)]
                             + [("const", False), ("const", True)])

    def extend(children):
        return st.one_of(
            st.tuples(st.just("not"), children),
            st.tuples(st.just("and"), children, children),
            st.tuples(st.just("or"), children, children),
            st.tuples(st.just("xor"), children, children),
        )

    return st.recursive(leaves, extend, max_leaves=10)


def build_bdd(bdd, expr):
    tag = expr[0]
    if tag == "var":
        return bdd.var_node(expr[1])
    if tag == "const":
        return ONE if expr[1] else ZERO
    if tag == "not":
        return bdd.apply_not(build_bdd(bdd, expr[1]))
    if tag == "and":
        return bdd.apply_and(build_bdd(bdd, expr[1]), build_bdd(bdd, expr[2]))
    if tag == "or":
        return bdd.apply_or(build_bdd(bdd, expr[1]), build_bdd(bdd, expr[2]))
    if tag == "xor":
        return bdd.apply_xor(build_bdd(bdd, expr[1]), build_bdd(bdd, expr[2]))
    raise AssertionError(tag)


def check_identities(bdd, f, g, qvars):
    """The negation identities, asserted structurally on edges."""
    # Double negation is the literal identity on edges.
    assert bdd.apply_not(bdd.apply_not(f)) == f
    # De Morgan, both directions.
    assert (bdd.apply_not(bdd.apply_and(f, g))
            == bdd.apply_or(bdd.apply_not(f), bdd.apply_not(g)))
    assert (bdd.apply_not(bdd.apply_or(f, g))
            == bdd.apply_and(bdd.apply_not(f), bdd.apply_not(g)))
    # Complement laws.
    assert bdd.apply_and(f, bdd.apply_not(f)) == ZERO
    assert bdd.apply_or(f, bdd.apply_not(f)) == ONE
    # Universal quantification is the double-negated existential.
    assert (bdd.forall(f, qvars)
            == bdd.apply_not(bdd.exists(bdd.apply_not(f), qvars)))


STAGES = ["fresh", "gc", "set_order", "sift"]


@settings(max_examples=60, deadline=None)
@given(exprs(), exprs(),
       st.sets(st.integers(min_value=0, max_value=NUM_VARS - 1),
               min_size=1, max_size=3),
       st.permutations(list(range(NUM_VARS))),
       st.sampled_from(STAGES))
def test_negation_identities_survive_lifecycle(left, right, variables,
                                               order, stage):
    bdd = BDD(var_names=NAMES)
    f = bdd.ref(build_bdd(bdd, left))
    g = bdd.ref(build_bdd(bdd, right))
    check_identities(bdd, f, g, variables)
    if stage == "gc":
        bdd.collect_garbage()
    elif stage == "set_order":
        bdd.set_order(order)
    elif stage == "sift":
        sift(bdd)
    bdd.assert_consistent()
    check_identities(bdd, f, g, variables)


@settings(max_examples=60, deadline=None)
@given(exprs())
def test_negation_shares_the_dag(expr):
    """f and NOT f are one DAG: same regular edge, same node count."""
    bdd = BDD(var_names=NAMES)
    f = build_bdd(bdd, expr)
    nf = bdd.apply_not(f)
    assert nf == f ^ 1
    assert bdd.regular(f) == bdd.regular(nf)
    assert bdd.size(f) == bdd.size(nf)


@settings(max_examples=60, deadline=None)
@given(exprs())
def test_apply_not_allocates_nothing(expr):
    """O(1) negation: no new nodes, no cache traffic, no frees."""
    bdd = BDD(var_names=NAMES)
    f = build_bdd(bdd, expr)
    nodes_before = len(bdd._var)
    free_before = len(bdd._free)
    cache_before = len(bdd._cache)
    nf = bdd.apply_not(f)
    assert len(bdd._var) == nodes_before
    assert len(bdd._free) == free_before
    assert len(bdd._cache) == cache_before
    assert bdd.apply_not(nf) == f


@settings(max_examples=40, deadline=None)
@given(exprs(), exprs())
def test_negation_semantics_brute_force(left, right):
    """Semantic cross-check of the canonicalised caches: OR through the
    AND cache, diff and xor under complement factoring."""
    def eval_expr(expr, env):
        tag = expr[0]
        if tag == "var":
            return env[expr[1]]
        if tag == "const":
            return expr[1]
        if tag == "not":
            return not eval_expr(expr[1], env)
        if tag == "and":
            return eval_expr(expr[1], env) and eval_expr(expr[2], env)
        if tag == "or":
            return eval_expr(expr[1], env) or eval_expr(expr[2], env)
        if tag == "xor":
            return eval_expr(expr[1], env) != eval_expr(expr[2], env)
        raise AssertionError(tag)

    bdd = BDD(var_names=NAMES)
    f = build_bdd(bdd, left)
    g = build_bdd(bdd, right)
    both_or = bdd.apply_or(f, g)
    both_diff = bdd.apply_diff(f, g)
    both_xor = bdd.apply_xor(f, g)
    for values in itertools.product([False, True], repeat=NUM_VARS):
        env = dict(enumerate(values))
        lv, rv = eval_expr(left, env), eval_expr(right, env)
        assert bdd.eval_node(both_or, env) == (lv or rv)
        assert bdd.eval_node(both_diff, env) == (lv and not rv)
        assert bdd.eval_node(both_xor, env) == (lv != rv)
