"""Property-based JSON round-trips for portfolio specs and results.

Randomized member subsets, failure lists and race extras go through
``to_dict``/``from_dict`` (with a real ``json.dumps`` hop in between,
so tuples must survive list-ification) and come back equal.
"""

import json

from hypothesis import given, settings, strategies as st

from repro.analysis import (PORTFOLIO_MEMBERS, AnalysisResult,
                            AnalysisSpec, MemberFailure)

members_strategy = st.lists(
    st.sampled_from(PORTFOLIO_MEMBERS), min_size=1,
    max_size=len(PORTFOLIO_MEMBERS), unique=True).map(tuple)

failure_strategy = st.builds(
    MemberFailure,
    member=st.one_of(st.none(), st.sampled_from(PORTFOLIO_MEMBERS)),
    kind=st.sampled_from(["crash", "timeout", "error", "spawn", "queue"]),
    detail=st.text(max_size=40),
    exitcode=st.one_of(st.none(),
                       st.integers(min_value=-32, max_value=255)))

outcome_strategy = st.sampled_from(
    ["won", "cancelled", "crash", "timeout", "error", "spawn", "skipped"])

timeout_strategy = st.one_of(
    st.none(), st.floats(min_value=0.001, max_value=3600.0,
                         allow_nan=False, allow_infinity=False))


def json_hop(payload):
    """Force the payload through real JSON, as the worker queue and
    benchmark files do — tuples become lists, keys become strings."""
    return json.loads(json.dumps(payload))


@settings(max_examples=100, deadline=None)
@given(members=members_strategy, timeout=timeout_strategy,
       member_timeout=timeout_strategy)
def test_spec_roundtrips_portfolio_fields(members, timeout,
                                          member_timeout):
    spec = AnalysisSpec(backend="portfolio", portfolio_members=members,
                        timeout=timeout, member_timeout=member_timeout)
    restored = AnalysisSpec.from_dict(json_hop(spec.to_dict()))
    assert restored == spec
    assert restored.portfolio_members == members  # tuple, not list
    assert restored.resolved_members == members


@settings(max_examples=100, deadline=None)
@given(failure=failure_strategy)
def test_member_failure_roundtrips(failure):
    assert MemberFailure.from_dict(json_hop(failure.to_dict())) == failure


@settings(max_examples=100, deadline=None)
@given(members=members_strategy,
       winner_index=st.integers(min_value=0, max_value=10),
       outcomes=st.lists(outcome_strategy, min_size=len(PORTFOLIO_MEMBERS),
                         max_size=len(PORTFOLIO_MEMBERS)),
       failures=st.lists(failure_strategy, max_size=4),
       mode=st.sampled_from(["process", "serial"]),
       seconds=st.floats(min_value=0.0, max_value=1e4, allow_nan=False,
                         allow_infinity=False))
def test_result_roundtrips_portfolio_extras(members, winner_index,
                                            outcomes, failures, mode,
                                            seconds):
    winner = members[winner_index % len(members)]
    race = {
        "winner": winner,
        "mode": mode,
        "members": [
            {"member": member, "outcome": outcome,
             "seconds": seconds if outcome == "won" else None}
            for member, outcome in zip(members, outcomes)
        ],
        "failures": [f.to_dict() for f in failures],
    }
    result = AnalysisResult(
        spec=AnalysisSpec(backend="portfolio",
                          portfolio_members=members),
        engine=f"portfolio/{winner}", markings=8, iterations=3,
        variables=11, final_nodes=17, peak_nodes=40, seconds=seconds,
        reorder_count=0,
        extras={"portfolio": race, "winner_extras": {"scheme": "improved"},
                "build_seconds": 0.0, "fixpoint_seconds": seconds})

    restored = AnalysisResult.from_dict(json_hop(result.to_dict()))

    assert restored.spec == result.spec
    assert restored.spec.resolved_members == members
    assert restored.engine == result.engine
    assert restored.extras == result.extras
    assert restored.reachable is None
    restored_failures = [MemberFailure.from_dict(d)
                         for d in restored.extras["portfolio"]["failures"]]
    assert restored_failures == list(failures)
