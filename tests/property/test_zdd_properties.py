"""Property-based tests for the ZDD manager against Python set families."""

from hypothesis import given, settings, strategies as st

from repro.bdd import EMPTY, ZDD

NUM_ELEMS = 5
NAMES = [f"e{i}" for i in range(NUM_ELEMS)]

set_strategy = st.frozensets(
    st.integers(min_value=0, max_value=NUM_ELEMS - 1), max_size=NUM_ELEMS)
family_strategy = st.frozensets(set_strategy, max_size=12)


def build(zdd, fam):
    return zdd.from_sets(fam)


def extract(zdd, node):
    return frozenset(zdd.iter_sets(node))


@settings(max_examples=150, deadline=None)
@given(family_strategy)
def test_roundtrip(fam):
    zdd = ZDD(var_names=NAMES)
    assert extract(zdd, build(zdd, fam)) == fam


@settings(max_examples=150, deadline=None)
@given(family_strategy, family_strategy)
def test_union_is_set_union(fam1, fam2):
    zdd = ZDD(var_names=NAMES)
    node = zdd.union(build(zdd, fam1), build(zdd, fam2))
    assert extract(zdd, node) == fam1 | fam2


@settings(max_examples=150, deadline=None)
@given(family_strategy, family_strategy)
def test_intersect_is_set_intersection(fam1, fam2):
    zdd = ZDD(var_names=NAMES)
    node = zdd.intersect(build(zdd, fam1), build(zdd, fam2))
    assert extract(zdd, node) == fam1 & fam2


@settings(max_examples=150, deadline=None)
@given(family_strategy, family_strategy)
def test_diff_is_set_difference(fam1, fam2):
    zdd = ZDD(var_names=NAMES)
    node = zdd.diff(build(zdd, fam1), build(zdd, fam2))
    assert extract(zdd, node) == fam1 - fam2


@settings(max_examples=150, deadline=None)
@given(family_strategy, st.integers(min_value=0, max_value=NUM_ELEMS - 1))
def test_subset1_semantics(fam, elem):
    zdd = ZDD(var_names=NAMES)
    node = zdd.subset1(build(zdd, fam), elem)
    expected = frozenset(s - {elem} for s in fam if elem in s)
    assert extract(zdd, node) == expected


@settings(max_examples=150, deadline=None)
@given(family_strategy, st.integers(min_value=0, max_value=NUM_ELEMS - 1))
def test_subset0_semantics(fam, elem):
    zdd = ZDD(var_names=NAMES)
    node = zdd.subset0(build(zdd, fam), elem)
    expected = frozenset(s for s in fam if elem not in s)
    assert extract(zdd, node) == expected


@settings(max_examples=150, deadline=None)
@given(family_strategy, st.integers(min_value=0, max_value=NUM_ELEMS - 1))
def test_change_semantics(fam, elem):
    zdd = ZDD(var_names=NAMES)
    node = zdd.change(build(zdd, fam), elem)
    expected = frozenset(
        (s - {elem}) if elem in s else frozenset(s | {elem}) for s in fam)
    assert extract(zdd, node) == expected


@settings(max_examples=150, deadline=None)
@given(family_strategy)
def test_count_matches_cardinality(fam):
    zdd = ZDD(var_names=NAMES)
    assert zdd.count(build(zdd, fam)) == len(fam)


@settings(max_examples=150, deadline=None)
@given(family_strategy, family_strategy)
def test_canonicity(fam1, fam2):
    zdd = ZDD(var_names=NAMES)
    node1, node2 = build(zdd, fam1), build(zdd, fam2)
    assert (node1 == node2) == (fam1 == fam2)


@settings(max_examples=100, deadline=None)
@given(family_strategy, set_strategy)
def test_contains(fam, probe):
    zdd = ZDD(var_names=NAMES)
    node = build(zdd, fam)
    assert zdd.contains(node, probe) == (probe in fam)


@settings(max_examples=100, deadline=None)
@given(family_strategy, st.integers(min_value=0, max_value=NUM_ELEMS - 1))
def test_partition_by_element(fam, elem):
    """with-elem and without-elem partition the family."""
    zdd = ZDD(var_names=NAMES)
    node = build(zdd, fam)
    with_e = zdd.change(zdd.subset1(node, elem), elem)
    without_e = zdd.subset0(node, elem)
    assert zdd.union(with_e, without_e) == node
    assert zdd.intersect(with_e, without_e) == EMPTY


# ---------------------------------------------------------------------
# The relational core: product / exists / project / supset / rename /
# and_exists
# ---------------------------------------------------------------------

vars_strategy = st.frozensets(
    st.integers(min_value=0, max_value=NUM_ELEMS - 1), max_size=NUM_ELEMS)
ALL_ELEMS = frozenset(range(NUM_ELEMS))


@settings(max_examples=150, deadline=None)
@given(family_strategy, family_strategy)
def test_product_is_set_join(fam1, fam2):
    zdd = ZDD(var_names=NAMES)
    node = zdd.product(build(zdd, fam1), build(zdd, fam2))
    assert extract(zdd, node) == frozenset(a | b for a in fam1
                                           for b in fam2)


@settings(max_examples=150, deadline=None)
@given(family_strategy, family_strategy, family_strategy)
def test_product_distributes_over_union(fam1, fam2, fam3):
    zdd = ZDD(var_names=NAMES)
    u, v, w = (build(zdd, f) for f in (fam1, fam2, fam3))
    assert zdd.product(u, zdd.union(v, w)) \
        == zdd.union(zdd.product(u, v), zdd.product(u, w))


@settings(max_examples=150, deadline=None)
@given(family_strategy, vars_strategy)
def test_exists_semantics_and_idempotence(fam, qvars):
    zdd = ZDD(var_names=NAMES)
    node = build(zdd, fam)
    once = zdd.exists(node, qvars)
    assert extract(zdd, once) == frozenset(s - qvars for s in fam)
    assert zdd.exists(once, qvars) == once


@settings(max_examples=150, deadline=None)
@given(family_strategy, vars_strategy)
def test_project_is_exists_on_the_complement(fam, keep):
    zdd = ZDD(var_names=NAMES)
    node = build(zdd, fam)
    projected = zdd.project(node, keep)
    assert extract(zdd, projected) == frozenset(s & keep for s in fam)
    assert projected == zdd.exists(node, ALL_ELEMS - keep)


@settings(max_examples=150, deadline=None)
@given(family_strategy, vars_strategy)
def test_supset_filters_by_containment(fam, want):
    zdd = ZDD(var_names=NAMES)
    node = zdd.supset(build(zdd, fam), want)
    assert extract(zdd, node) == frozenset(s for s in fam if want <= s)


@settings(max_examples=150, deadline=None)
@given(family_strategy)
def test_rename_round_trip(fam):
    """Shifting every element to its primed copy and back is identity."""
    paired = ZDD()
    for name in NAMES:
        paired.add_var(name)
        paired.add_var(name + "'")
    node = paired.from_sets([{2 * e for e in s} for s in fam])
    forward = {2 * i: 2 * i + 1 for i in range(NUM_ELEMS)}
    backward = {2 * i + 1: 2 * i for i in range(NUM_ELEMS)}
    assert paired.rename(paired.rename(node, forward), backward) == node


@settings(max_examples=150, deadline=None)
@given(family_strategy, family_strategy, vars_strategy)
def test_and_exists_is_fused_project_of_product(fam1, fam2, qvars):
    """``and_exists(u, v, qvars)`` equals ``exists(product(u, v), qvars)``
    — equivalently the projection of the product onto the kept subset."""
    zdd = ZDD(var_names=NAMES)
    u, v = build(zdd, fam1), build(zdd, fam2)
    fused = zdd.and_exists(u, v, qvars)
    joined = zdd.product(u, v)
    assert fused == zdd.exists(joined, qvars)
    assert fused == zdd.project(joined, ALL_ELEMS - qvars)
