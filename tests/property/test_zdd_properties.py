"""Property-based tests for the ZDD manager against Python set families."""

from hypothesis import given, settings, strategies as st

from repro.bdd import EMPTY, ZDD

NUM_ELEMS = 5
NAMES = [f"e{i}" for i in range(NUM_ELEMS)]

set_strategy = st.frozensets(
    st.integers(min_value=0, max_value=NUM_ELEMS - 1), max_size=NUM_ELEMS)
family_strategy = st.frozensets(set_strategy, max_size=12)


def build(zdd, fam):
    return zdd.from_sets(fam)


def extract(zdd, node):
    return frozenset(zdd.iter_sets(node))


@settings(max_examples=150, deadline=None)
@given(family_strategy)
def test_roundtrip(fam):
    zdd = ZDD(var_names=NAMES)
    assert extract(zdd, build(zdd, fam)) == fam


@settings(max_examples=150, deadline=None)
@given(family_strategy, family_strategy)
def test_union_is_set_union(fam1, fam2):
    zdd = ZDD(var_names=NAMES)
    node = zdd.union(build(zdd, fam1), build(zdd, fam2))
    assert extract(zdd, node) == fam1 | fam2


@settings(max_examples=150, deadline=None)
@given(family_strategy, family_strategy)
def test_intersect_is_set_intersection(fam1, fam2):
    zdd = ZDD(var_names=NAMES)
    node = zdd.intersect(build(zdd, fam1), build(zdd, fam2))
    assert extract(zdd, node) == fam1 & fam2


@settings(max_examples=150, deadline=None)
@given(family_strategy, family_strategy)
def test_diff_is_set_difference(fam1, fam2):
    zdd = ZDD(var_names=NAMES)
    node = zdd.diff(build(zdd, fam1), build(zdd, fam2))
    assert extract(zdd, node) == fam1 - fam2


@settings(max_examples=150, deadline=None)
@given(family_strategy, st.integers(min_value=0, max_value=NUM_ELEMS - 1))
def test_subset1_semantics(fam, elem):
    zdd = ZDD(var_names=NAMES)
    node = zdd.subset1(build(zdd, fam), elem)
    expected = frozenset(s - {elem} for s in fam if elem in s)
    assert extract(zdd, node) == expected


@settings(max_examples=150, deadline=None)
@given(family_strategy, st.integers(min_value=0, max_value=NUM_ELEMS - 1))
def test_subset0_semantics(fam, elem):
    zdd = ZDD(var_names=NAMES)
    node = zdd.subset0(build(zdd, fam), elem)
    expected = frozenset(s for s in fam if elem not in s)
    assert extract(zdd, node) == expected


@settings(max_examples=150, deadline=None)
@given(family_strategy, st.integers(min_value=0, max_value=NUM_ELEMS - 1))
def test_change_semantics(fam, elem):
    zdd = ZDD(var_names=NAMES)
    node = zdd.change(build(zdd, fam), elem)
    expected = frozenset(
        (s - {elem}) if elem in s else frozenset(s | {elem}) for s in fam)
    assert extract(zdd, node) == expected


@settings(max_examples=150, deadline=None)
@given(family_strategy)
def test_count_matches_cardinality(fam):
    zdd = ZDD(var_names=NAMES)
    assert zdd.count(build(zdd, fam)) == len(fam)


@settings(max_examples=150, deadline=None)
@given(family_strategy, family_strategy)
def test_canonicity(fam1, fam2):
    zdd = ZDD(var_names=NAMES)
    node1, node2 = build(zdd, fam1), build(zdd, fam2)
    assert (node1 == node2) == (fam1 == fam2)


@settings(max_examples=100, deadline=None)
@given(family_strategy, set_strategy)
def test_contains(fam, probe):
    zdd = ZDD(var_names=NAMES)
    node = build(zdd, fam)
    assert zdd.contains(node, probe) == (probe in fam)


@settings(max_examples=100, deadline=None)
@given(family_strategy, st.integers(min_value=0, max_value=NUM_ELEMS - 1))
def test_partition_by_element(fam, elem):
    """with-elem and without-elem partition the family."""
    zdd = ZDD(var_names=NAMES)
    node = build(zdd, fam)
    with_e = zdd.change(zdd.subset1(node, elem), elem)
    without_e = zdd.subset0(node, elem)
    assert zdd.union(with_e, without_e) == node
    assert zdd.intersect(with_e, without_e) == EMPTY
