"""The service front ends: ``repro.cli batch`` and ``serve``."""

import io
import json

import pytest

from repro.cli import main


def write_requests(tmp_path, lines):
    path = tmp_path / "requests.jsonl"
    path.write_text("".join(json.dumps(line) + "\n" for line in lines))
    return str(path)


def read_responses(path):
    return [json.loads(line)
            for line in open(path, encoding="utf-8")
            if line.strip()]


REQUESTS = [
    {"id": "q1", "family": "figure1"},
    {"id": "q2", "family": "phil", "n": 3},
    {"id": "q3", "family": "figure1"},                     # duplicate
    {"id": "q4", "family": "phil", "n": 3,
     "spec": {"backend": "zdd"}},
]


class TestBatch:
    def test_batch_resolves_every_request(self, tmp_path, capsys):
        requests = write_requests(tmp_path, REQUESTS)
        out = tmp_path / "responses.jsonl"
        assert main(["batch", requests, "-o", str(out),
                     "--cache-dir", str(tmp_path / "cache"),
                     "--workers", "2"]) == 0
        responses = read_responses(out)
        assert [r["id"] for r in responses] == ["q1", "q2", "q3", "q4"]
        assert all(r["status"] == "ok" for r in responses)
        by_id = {r["id"]: r for r in responses}
        assert by_id["q1"]["result"]["markings"] == 8
        assert by_id["q3"]["service"]["dedup"] is True
        assert by_id["q3"]["result"] == by_id["q1"]["result"]
        assert by_id["q4"]["result"]["spec"]["backend"] == "zdd"
        assert "cache hits 0" in capsys.readouterr().err

    def test_second_batch_is_all_cache_hits_and_bit_identical(
            self, tmp_path, capsys):
        requests = write_requests(tmp_path, REQUESTS)
        first_out = tmp_path / "first.jsonl"
        second_out = tmp_path / "second.jsonl"
        cache = str(tmp_path / "cache")
        assert main(["batch", requests, "-o", str(first_out),
                     "--cache-dir", cache, "--workers", "2"]) == 0
        assert main(["batch", requests, "-o", str(second_out),
                     "--cache-dir", cache, "--workers", "2"]) == 0
        first = read_responses(first_out)
        second = read_responses(second_out)
        for before, after in zip(first, second):
            assert after["service"]["cache"] == "hit"
            # Bit-identical result payloads: the cache hands back the
            # original solve's JSON, untouched by telemetry.
            assert after["result"] == before["result"]
        err = capsys.readouterr().err
        assert "cache hits 4" in err.splitlines()[-1]

    def test_kill_one_worker_batch_still_completes(self, tmp_path):
        # phil-6 twice plus friends: enough work that the SIGKILL lands
        # while the pool is busy, and the batch must still finish.
        requests = write_requests(tmp_path, [
            {"id": "k1", "family": "phil", "n": 6},
            {"id": "k2", "family": "phil", "n": 6},
            {"id": "k3", "family": "figure1"},
            {"id": "k4", "family": "slot", "n": 2},
        ])
        out = tmp_path / "responses.jsonl"
        assert main(["batch", requests, "-o", str(out),
                     "--cache-dir", str(tmp_path / "cache"),
                     "--workers", "2", "--kill-worker-after", "0"]) == 0
        responses = read_responses(out)
        assert [r["status"] for r in responses] == ["ok"] * 4
        assert responses[0]["result"]["markings"] > 0

    def test_workers_zero_runs_serially(self, tmp_path):
        requests = write_requests(tmp_path,
                                  [{"id": "s1", "family": "figure1"}])
        out = tmp_path / "responses.jsonl"
        assert main(["batch", requests, "-o", str(out),
                     "--workers", "0"]) == 0
        (response,) = read_responses(out)
        assert response["service"]["mode"] == "serial"

    def test_bad_request_lines_fail_the_batch_but_not_the_rest(
            self, tmp_path):
        requests = tmp_path / "requests.jsonl"
        requests.write_text(
            '{"id": "ok", "family": "figure1"}\n'
            'this is not json\n'
            '{"id": "nosuch", "family": "klingon", "n": 2}\n'
            '{"id": "badspec", "family": "figure1", '
            '"spec": {"backend": "quantum"}}\n')
        out = tmp_path / "responses.jsonl"
        assert main(["batch", str(requests), "-o", str(out),
                     "--workers", "0"]) == 1
        responses = read_responses(out)
        assert [r["status"] for r in responses] \
            == ["ok", "error", "error", "error"]
        assert responses[1]["error"]["kind"] == "JSONDecodeError"
        assert "klingon" not in responses[2].get("result", {})
        assert responses[3]["error"]["kind"] == "SpecError"
        # Failures past the JSON parse keep the caller's id — only the
        # unparseable line falls back to its position.
        assert [r["id"] for r in responses] \
            == ["ok", "line-1", "nosuch", "badspec"]

    def test_missing_net_file_error_keeps_request_id(self, tmp_path):
        requests = write_requests(
            tmp_path, [{"id": "lost", "net": "no/such/net.pnet"}])
        out = tmp_path / "responses.jsonl"
        assert main(["batch", requests, "-o", str(out),
                     "--workers", "0"]) == 1
        (response,) = read_responses(out)
        assert response["id"] == "lost"
        assert response["status"] == "error"

    def test_checkpoint_dir_leaves_resumable_state(self, tmp_path):
        requests = write_requests(tmp_path,
                                  [{"id": "c1", "family": "phil",
                                    "n": 3}])
        out = tmp_path / "responses.jsonl"
        ckpt = tmp_path / "ckpt"
        assert main(["batch", requests, "-o", str(out),
                     "--cache-dir", str(tmp_path / "cache"),
                     "--checkpoint-dir", str(ckpt),
                     "--workers", "0"]) == 0
        assert list(ckpt.glob("*.ckpt"))
        # A fresh cache over the same checkpoint dir resumes.
        out2 = tmp_path / "responses2.jsonl"
        assert main(["batch", requests, "-o", str(out2),
                     "--cache-dir", str(tmp_path / "cache2"),
                     "--checkpoint-dir", str(ckpt),
                     "--workers", "0"]) == 0
        (response,) = read_responses(out2)
        assert response["result"]["extras"]["resume"]["status"] \
            == "resumed"


class TestServe:
    def run_serve(self, monkeypatch, capsys, lines, extra=()):
        stdin = io.StringIO(
            "".join(json.dumps(line) + "\n" for line in lines))
        monkeypatch.setattr("sys.stdin", stdin)
        code = main(["serve", "--workers", "0", *extra])
        captured = capsys.readouterr()
        return code, [json.loads(line)
                      for line in captured.out.splitlines()
                      if line.strip()], captured.err

    def test_serve_loop_answers_each_line(self, monkeypatch, capsys):
        code, responses, err = self.run_serve(
            monkeypatch, capsys,
            [{"id": "a", "family": "figure1"},
             {"id": "b", "family": "figure1"}])
        assert code == 0
        assert [r["id"] for r in responses] == ["a", "b"]
        # Within one serve session the second hit comes from memory.
        assert responses[1]["service"] == {
            "cache": "hit", "tier": "memory", "mode": "cache",
            "dedup": False, "key": responses[0]["service"]["key"]}
        assert responses[1]["result"] == responses[0]["result"]
        assert "cache hits 1" in err

    def test_serve_reports_errors_and_exits_nonzero(self, monkeypatch,
                                                    capsys):
        code, responses, _ = self.run_serve(
            monkeypatch, capsys,
            [{"id": "a", "family": "figure1"},
             {"id": "b", "family": "phil"}])  # missing size
        assert code == 1
        assert responses[0]["status"] == "ok"
        assert responses[1]["status"] == "error"
