"""ResultCache: key contract, tiers, durability, eviction, telemetry."""

import json
import subprocess
import sys
import time

import pytest

from repro.analysis import AnalysisSpec, analyze
from repro.service import CACHE_FORMAT, ResultCache, cache_key
from repro.service.cache import result_digest


@pytest.fixture(scope="module")
def solved(request):
    """One real solved result to cache (figure1: cheap, deterministic)."""
    from repro.petri.generators import figure1_net
    net = figure1_net()
    spec = AnalysisSpec()
    return net, spec, analyze(net, spec).to_dict()


# ---------------------------------------------------------------------------
# Key contract


class TestKey:
    def test_key_is_net_and_semantic_spec_fingerprint(self, solved):
        net, spec, _ = solved
        from repro.analysis import net_fingerprint, spec_fingerprint
        assert cache_key(net, spec) == (net_fingerprint(net),
                                        spec_fingerprint(spec))

    def test_nonsemantic_fields_share_one_entry(self, solved, tmp_path):
        """workers / checkpoints / budgets must not fracture the key."""
        net, spec, payload = solved
        cache = ResultCache(directory=tmp_path)
        cache.put_for(net, spec, payload)
        for variant in (
                spec.replace(workers=4, form="relational",
                             engine="partitioned-mp").replace(
                                 form=spec.form, engine=spec.engine,
                                 workers=None),
                spec.replace(checkpoint_path="x.ckpt", resume=True),
                spec.replace(node_budget=10_000, deadline=60.0),
                spec.replace(max_iterations=3)):
            lookup = cache.get_for(net, variant)
            assert lookup.hit, variant
            assert lookup.result == payload

    def test_semantic_change_misses(self, solved, tmp_path):
        net, spec, payload = solved
        cache = ResultCache(directory=tmp_path)
        cache.put_for(net, spec, payload)
        assert not cache.get_for(net, spec.replace(backend="zdd")).hit
        assert not cache.get_for(net, spec.replace(scheme="sparse")).hit


# ---------------------------------------------------------------------------
# Tiers


class TestTiers:
    def test_memory_hit_after_put(self, solved, tmp_path):
        net, spec, payload = solved
        cache = ResultCache(directory=tmp_path)
        cache.put_for(net, spec, payload)
        lookup = cache.get_for(net, spec)
        assert lookup.hit and lookup.tier == "memory"

    def test_disk_hit_survives_restart_and_promotes(self, solved,
                                                    tmp_path):
        net, spec, payload = solved
        ResultCache(directory=tmp_path).put_for(net, spec, payload)
        fresh = ResultCache(directory=tmp_path)  # new "process"
        first = fresh.get_for(net, spec)
        assert first.hit and first.tier == "disk"
        assert first.result == payload
        second = fresh.get_for(net, spec)       # promoted
        assert second.tier == "memory"
        assert fresh.stats()["hits_disk"] == 1
        assert fresh.stats()["hits_memory"] == 1

    def test_memory_only_cache_works_without_directory(self, solved):
        net, spec, payload = solved
        cache = ResultCache(directory=None)
        cache.put_for(net, spec, payload)
        assert cache.get_for(net, spec).hit
        assert cache.entry_path(cache_key(net, spec)) is None

    def test_memory_tier_is_lru_bounded(self, solved):
        net, spec, payload = solved
        cache = ResultCache(directory=None, memory_entries=2)
        cache.put(("n1", "s"), payload)
        cache.put(("n2", "s"), payload)
        cache.get(("n1", "s"))          # refresh n1
        cache.put(("n3", "s"), payload)  # evicts n2, the LRU entry
        assert cache.get(("n1", "s")).hit
        assert not cache.get(("n2", "s")).hit
        assert cache.get(("n3", "s")).hit


# ---------------------------------------------------------------------------
# Durability: every damaged entry recomputes, with a structured reason


class TestDurability:
    def entry(self, cache, solved):
        net, spec, payload = solved
        cache.put_for(net, spec, payload)
        return cache.entry_path(cache_key(net, spec))

    def fresh_lookup(self, tmp_path, solved):
        """Look up through a cold cache (no memory tier to mask disk)."""
        net, spec, _ = solved
        return ResultCache(directory=tmp_path).get_for(net, spec)

    def test_truncation_at_every_byte_boundary(self, solved, tmp_path):
        """A torn disk entry is never served, wherever the tear is."""
        cache = ResultCache(directory=tmp_path)
        path = self.entry(cache, solved)
        blob = path.read_bytes()
        step = max(1, len(blob) // 79)  # ~80 cut points incl. 0 and end-1
        for cut in list(range(0, len(blob), step)) + [len(blob) - 1]:
            path.write_bytes(blob[:cut])
            lookup = self.fresh_lookup(tmp_path, solved)
            assert not lookup.hit, f"served a {cut}-byte prefix"
            assert lookup.reason in ("corrupt", "schema"), cut
        path.write_bytes(blob)
        assert self.fresh_lookup(tmp_path, solved).hit

    def test_bit_rot_in_payload_detected(self, solved, tmp_path):
        cache = ResultCache(directory=tmp_path)
        path = self.entry(cache, solved)
        entry = json.loads(path.read_text())
        entry["result"]["markings"] += 1  # silent corruption
        path.write_text(json.dumps(entry))
        lookup = self.fresh_lookup(tmp_path, solved)
        assert not lookup.hit and lookup.reason == "corrupt"

    def test_wrong_format_header_is_schema_miss(self, solved, tmp_path):
        cache = ResultCache(directory=tmp_path)
        path = self.entry(cache, solved)
        entry = json.loads(path.read_text())
        entry["format"] = "somebody-else 9"
        path.write_text(json.dumps(entry))
        lookup = self.fresh_lookup(tmp_path, solved)
        assert not lookup.hit and lookup.reason == "schema"

    def test_renamed_entry_is_mismatch_miss(self, solved, tmp_path):
        net, spec, payload = solved
        cache = ResultCache(directory=tmp_path)
        path = self.entry(cache, solved)
        other = path.with_name("feedfeedfeedfeed-feedfeedfeedfeed.json")
        path.rename(other)
        lookup = ResultCache(directory=tmp_path).get(
            ("feedfeedfeedfeed", "feedfeedfeedfeed"))
        assert not lookup.hit and lookup.reason == "mismatch"

    def test_absent_is_a_counted_reason(self, solved, tmp_path):
        net, spec, _ = solved
        cache = ResultCache(directory=tmp_path)
        assert cache.get_for(net, spec).reason == "absent"
        assert cache.stats()["misses"]["absent"] == 1

    # pids are always < pid_max, whose kernel ceiling is 2**22 — this
    # pid can never name a live process.
    IMPOSSIBLE_PID = 2 ** 22

    def test_put_sweeps_dead_writers_tmp_files(self, solved, tmp_path):
        net, spec, payload = solved
        stale = tmp_path / f"dead-dead.json.tmp.{self.IMPOSSIBLE_PID}.1"
        tmp_path.mkdir(exist_ok=True)
        stale.write_text("partial garbage")
        cache = ResultCache(directory=tmp_path)
        cache.put_for(net, spec, payload)
        assert not stale.exists()
        assert cache.get_for(net, spec).hit

    def test_put_spares_live_writers_tmp_files(self, solved, tmp_path):
        """The disk tier is shared: a tmp file whose writer is alive is
        mid-``put`` and must not be unlinked from under it."""
        import os
        net, spec, payload = solved
        live = tmp_path / f"peer-peer.json.tmp.{os.getpid()}.7"
        tmp_path.mkdir(exist_ok=True)
        live.write_text('{"half": "written')
        ResultCache(directory=tmp_path).put_for(net, spec, payload)
        assert live.exists()

    def test_put_sweeps_ancient_tmp_files_regardless_of_pid(
            self, solved, tmp_path):
        """pid-reuse backstop: an hour-old tmp file is stranded even
        when some process now wears its writer's pid."""
        import os
        from repro.service.cache import STALE_TMP_SECONDS
        net, spec, payload = solved
        tmp_path.mkdir(exist_ok=True)
        ancient = tmp_path / f"old-old.json.tmp.{os.getpid()}.1"
        ancient.write_text("partial garbage")
        unparseable = tmp_path / "old-old.json.tmp.notapid"
        unparseable.write_text("partial garbage")
        stamp = time.time() - STALE_TMP_SECONDS - 60
        os.utime(ancient, (stamp, stamp))
        os.utime(unparseable, (stamp, stamp))
        ResultCache(directory=tmp_path).put_for(net, spec, payload)
        assert not ancient.exists()
        assert not unparseable.exists()


# ---------------------------------------------------------------------------
# Concurrent writers: two processes, same key, never a torn entry


_WRITER = """
import sys
from repro.service import ResultCache
from repro.service.cache import result_digest
payload = {"markings": int(sys.argv[3]), "blob": "x" * 2000}
cache = ResultCache(directory=sys.argv[1])
for _ in range(40):
    cache.put((sys.argv[2], "cafecafecafecafe"), payload)
"""


def test_concurrent_writers_never_tear_an_entry(tmp_path):
    """Two processes hammering one key: every observable state of the
    entry file is a complete, sealed write (last writer wins)."""
    procs = [subprocess.Popen(
        [sys.executable, "-c", _WRITER, str(tmp_path),
         "feedfacefeedface", str(1000 + i)])
        for i in range(2)]
    seen = 0
    reader = ResultCache(directory=tmp_path, memory_entries=0)
    deadline = time.monotonic() + 60
    while any(proc.poll() is None for proc in procs) or seen == 0:
        assert time.monotonic() < deadline, "writers never produced"
        lookup = reader.get(("feedfacefeedface", "cafecafecafecafe"))
        if lookup.hit:
            seen += 1
            assert lookup.result["markings"] in (1000, 1001)
        else:
            assert lookup.reason == "absent"  # never corrupt/torn
    for proc in procs:
        assert proc.wait() == 0
    final = reader.get(("feedfacefeedface", "cafecafecafecafe"))
    assert final.hit and seen > 0
    assert reader.stats()["misses"]["corrupt"] == 0


# ---------------------------------------------------------------------------
# Eviction


class TestEviction:
    def test_max_entries_drops_oldest(self, solved, tmp_path):
        import os
        import time
        _net, _spec, payload = solved
        cache = ResultCache(directory=tmp_path, max_entries=3)
        for i in range(5):
            key = (f"{i:016x}", "feedfeedfeedfeed")
            cache.put(key, payload)
            # mtime granularity: make the write order unambiguous
            # (back-dated so the entry being written is the newest).
            stamp = time.time() - (100 - i)
            os.utime(cache.entry_path(key), (stamp, stamp))
        disk = sorted(p.name for p in tmp_path.iterdir()
                      if p.name.endswith(".json"))
        assert len(disk) == 3
        assert cache.evictions == 2
        # Survivors are the newest writes.
        assert disk == [f"{i:016x}-feedfeedfeedfeed.json"
                        for i in (2, 3, 4)]

    def test_max_bytes_bounds_total_size(self, solved, tmp_path):
        _net, _spec, payload = solved
        entry_size = len(json.dumps({
            "format": CACHE_FORMAT, "key": ["a" * 16, "b" * 16],
            "sha256": result_digest(payload), "result": payload},
            sort_keys=True))
        cache = ResultCache(directory=tmp_path,
                            max_bytes=int(entry_size * 2.5))
        for i in range(4):
            cache.put((f"{i:016x}", "feedfeedfeedfeed"), payload)
        total = sum(p.stat().st_size for p in tmp_path.iterdir()
                    if p.name.endswith(".json"))
        assert total <= entry_size * 2.5
        assert cache.evictions >= 1

    def test_counters_snapshot(self, solved, tmp_path):
        net, spec, payload = solved
        cache = ResultCache(directory=tmp_path)
        cache.get_for(net, spec)
        cache.put_for(net, spec, payload)
        cache.get_for(net, spec)
        stats = cache.stats()
        assert stats["writes"] == 1
        assert stats["hits_memory"] == 1
        assert stats["misses"]["absent"] == 1
        assert stats["evictions"] == 0
