"""AnalysisWorkerPool: dispatch, crash recovery, degradation."""

import os
import signal
import time

import pytest

from repro.analysis import AnalysisSpec, analyze
from repro.petri.generators import philosophers
from repro.petri.parser import dumps
from repro.service import AnalysisWorkerPool
from repro.symbolic.parallel import SweepHarness


class _NoWorkersHarness(SweepHarness):
    """Pins the serial degradation: no process is ever spawned."""

    def available(self):
        return False


def drain(pool, want, timeout=120.0):
    """Poll until ``want`` events arrived (or fail loudly)."""
    events = []
    deadline = time.monotonic() + timeout
    while len(events) < want:
        assert time.monotonic() < deadline, \
            f"pool produced {len(events)}/{want} events: {events}"
        events.extend(pool.poll())
    return events


def test_round_trip_matches_serial_analyze(make_net, explicit_counts):
    net = make_net("figure1")
    spec = AnalysisSpec()
    baseline = analyze(net, spec).to_dict()
    with AnalysisWorkerPool(workers=1) as pool:
        assert pool.submit("r1", dumps(net), spec.to_dict())
        (tag, request_id, payload), = drain(pool, 1)
    assert (tag, request_id) == ("result", "r1")
    assert payload["markings"] == explicit_counts["figure1"]
    # The worker computes the identical analysis (timings aside).
    for field in ("markings", "iterations", "variables", "final_nodes",
                  "engine", "spec", "status", "reorder_count"):
        assert payload[field] == baseline[field], field


def test_multiple_requests_multiplex(make_net, explicit_counts):
    spec = AnalysisSpec().to_dict()
    nets = {"a": dumps(make_net("figure1")),
            "b": dumps(make_net("phil3")),
            "c": dumps(make_net("figure1"))}
    with AnalysisWorkerPool(workers=2) as pool:
        for request_id, text in nets.items():
            assert pool.submit(request_id, text, spec)
        events = drain(pool, 3)
    by_id = {request_id: payload for _, request_id, payload in events}
    assert by_id["a"]["markings"] == explicit_counts["figure1"]
    assert by_id["b"]["markings"] == explicit_counts["phil3"]

    def semantic(payload):
        """Everything but the wall-clock measurements."""
        return {key: value for key, value in payload.items()
                if key not in ("seconds", "extras")}

    assert semantic(by_id["c"]) == semantic(by_id["a"])
    assert pool.stats()["completed"] == 3


def test_request_error_keeps_worker_alive(make_net):
    """A failing analysis reports a structured error; the worker
    survives to serve the next request."""
    net_text = dumps(make_net("figure1"))
    bad = AnalysisSpec(max_iterations=1).to_dict()
    good = AnalysisSpec().to_dict()
    with AnalysisWorkerPool(workers=1) as pool:
        assert pool.submit("bad", net_text, bad)
        (tag, request_id, info), = drain(pool, 1)
        assert (tag, request_id) == ("error", "bad")
        assert info["kind"] == "TraversalLimitError"
        # Same process, next request: still healthy.
        assert pool.submit("good", net_text, good)
        (tag, request_id, payload), = drain(pool, 1)
        assert (tag, request_id) == ("result", "good")
        assert pool.stats()["respawns"] == 0


def test_sigkilled_worker_is_respawned_and_requests_complete(make_net):
    net_text = dumps(philosophers(4))
    spec = AnalysisSpec().to_dict()
    with AnalysisWorkerPool(workers=1) as pool:
        assert pool.submit("k1", net_text, spec)
        pids = pool.worker_pids()
        assert len(pids) == 1
        os.kill(pids[0], signal.SIGKILL)
        events = drain(pool, 1)
    assert events[0][0] == "result"
    assert events[0][1] == "k1"
    stats = pool.stats()
    assert stats["respawns"] == 1
    assert stats["crashes"][0]["action"] == "respawn"


def test_idle_worker_crash_is_detected_and_respawned(make_net):
    """A worker that dies *between* requests (nothing pending) is still
    respawned — the pool must not silently shrink, and the crash must
    reach the stats."""
    net_text = dumps(make_net("figure1"))
    spec = AnalysisSpec().to_dict()
    with AnalysisWorkerPool(workers=1) as pool:
        assert pool.submit("r1", net_text, spec)
        drain(pool, 1)
        pids = pool.worker_pids()
        assert len(pids) == 1
        # Let the worker go fully quiescent first: SIGKILL landing in
        # the microseconds while its queue feeder thread still holds
        # the shared result queue's write lock would wedge the queue
        # for every later writer — a different failure than the idle
        # crash under test.
        time.sleep(0.5)
        os.kill(pids[0], signal.SIGKILL)
        deadline = time.monotonic() + 120
        while pool.stats()["respawns"] < 1:
            assert time.monotonic() < deadline, \
                "idle crash never detected"
            pool.poll()
        stats = pool.stats()
        assert stats["crashes"] == [
            {"worker": 0, "pending": 0, "action": "respawn"}]
        # The replacement worker serves the next request.
        assert pool.submit("r2", net_text, spec)
        (tag, request_id, _), = drain(pool, 1)
        assert (tag, request_id) == ("result", "r2")


def test_worker_retired_after_respawn_budget_orphans_requests(make_net):
    """Kill the worker past MAX_RESPAWNS: the slot is retired and, with
    nobody left, the pending request comes back as an orphan."""
    from repro.symbolic.parallel import MAX_RESPAWNS
    net_text = dumps(philosophers(4))
    spec = AnalysisSpec().to_dict()
    with AnalysisWorkerPool(workers=1) as pool:
        assert pool.submit("k1", net_text, spec)
        killed = 0
        events = []
        deadline = time.monotonic() + 120
        while not events:
            assert time.monotonic() < deadline
            pids = pool.worker_pids()
            if pids and killed <= MAX_RESPAWNS:
                os.kill(pids[0], signal.SIGKILL)
                killed += 1
            events.extend(pool.poll())
        assert events[0] == ("orphan", "k1")
        assert pool.mode == "serial-fallback"
        # A dead pool refuses further work instead of losing it.
        assert not pool.submit("k2", net_text, spec)
    stats = pool.stats()
    assert stats["retired"] == 1


def test_unavailable_harness_degrades_before_spawning(make_net):
    pool = AnalysisWorkerPool(workers=2, harness=_NoWorkersHarness())
    assert not pool.submit("r1", dumps(make_net("figure1")),
                           AnalysisSpec().to_dict())
    assert pool.mode == "serial-fallback"
    assert pool.worker_pids() == []
    pool.close()


def test_workers_zero_never_spawns(make_net):
    pool = AnalysisWorkerPool(workers=0)
    assert not pool.submit("r1", dumps(make_net("figure1")),
                           AnalysisSpec().to_dict())
    assert pool.mode == "serial-fallback"
    pool.close()
