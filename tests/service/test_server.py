"""AnalysisService end-to-end: the ISSUE 9 acceptance suite.

The headline test drives a batch of 20 requests — repeats, in-flight
duplicates and fresh queries over two net families — through one
service and asserts the full contract: results identical to serial
``analyze()`` (modulo wall-clock measurements), cache hits served
without any solver running, in-flight duplicates deduped to one solve,
and a SIGKILLed worker's requests completing anyway.
"""

import os
import signal

import pytest

from repro.analysis import AnalysisSpec, analyze
from repro.service import AnalysisService, ResultCache, ServiceError
from repro.symbolic.parallel import SweepHarness


class _NoWorkersHarness(SweepHarness):
    def available(self):
        return False


def semantic(payload):
    """A result payload minus every wall-clock measurement.

    Two runs of the same deterministic analysis differ *only* in
    timings; everything else — spec echo, marking count, iteration
    trace, node counts, extras — must match bit for bit.
    """
    def strip(value):
        if isinstance(value, dict):
            return {key: strip(sub) for key, sub in value.items()
                    if not key.endswith("seconds")}
        return value
    return strip(payload)


@pytest.fixture(scope="module")
def baselines(request):
    """Serial ``analyze()`` oracles for every (net, spec) the batch
    uses, computed once without any service involved."""
    from repro.petri.generators import figure1_net, philosophers
    nets = {"figure1": figure1_net(), "phil4": philosophers(4)}
    specs = {
        "default": AnalysisSpec(),
        "zdd": AnalysisSpec(backend="zdd"),
        "sparse": AnalysisSpec(scheme="sparse"),
    }
    payloads = {}
    for net_name, net in nets.items():
        for spec_name, spec in specs.items():
            payloads[(net_name, spec_name)] = \
                analyze(net, spec).to_dict()
    return nets, specs, payloads


# ---------------------------------------------------------------------------
# The acceptance batch


def test_acceptance_batch_of_20(baselines, tmp_path):
    nets, specs, payloads = baselines
    # Phase 1: 12 requests submitted before anything resolves — 5
    # distinct (net, spec) keys, the rest in-flight duplicates.
    phase1 = [
        ("figure1", "default"), ("phil4", "default"),
        ("figure1", "default"),                       # dup in flight
        ("figure1", "zdd"), ("phil4", "zdd"),
        ("phil4", "default"),                         # dup in flight
        ("figure1", "default"),                       # dup in flight
        ("phil4", "zdd"),                             # dup in flight
        ("figure1", "zdd"),                           # dup in flight
        ("phil4", "sparse"),
        ("phil4", "sparse"),                          # dup in flight
        ("figure1", "default"),                       # dup in flight
    ]
    # Phase 2: 8 repeats submitted after phase 1 resolved — all cache.
    phase2 = [
        ("figure1", "default"), ("phil4", "default"),
        ("figure1", "zdd"), ("phil4", "zdd"),
        ("phil4", "sparse"), ("figure1", "default"),
        ("phil4", "default"), ("figure1", "zdd"),
    ]
    assert len(phase1) + len(phase2) == 20
    unique = sorted(set(phase1))
    assert len(unique) == 5 and len({n for n, _ in unique}) == 2

    with AnalysisService(cache_dir=str(tmp_path / "cache"),
                         workers=2) as service:
        handles1 = [(key, service.submit(nets[key[0]], specs[key[1]]))
                    for key in phase1]
        first_payload = {}
        for key, handle in handles1:
            payload = handle.result_dict()
            # Identical to the serial analyze() oracle, wall clock
            # aside.
            assert semantic(payload) == semantic(payloads[key]), key
            first_payload.setdefault(key, payload)
            # Duplicates of one key resolve to literally one payload.
            assert payload == first_payload[key], key
        stats = service.stats()
        # In-flight duplicates were deduped to exactly one solve each.
        assert stats["dedup_hits"] == len(phase1) - len(unique)
        assert stats["pool_solves"] + stats["serial_solves"] \
            == len(unique)
        solves_after_phase1 = (stats["pool_solves"],
                               stats["serial_solves"],
                               stats["pool"]["completed"])

        handles2 = [(key, service.submit(nets[key[0]], specs[key[1]]))
                    for key in phase2]
        for key, handle in handles2:
            # Cache hits resolve instantly and bit-identically to the
            # payload the original solve produced.
            assert handle.done(), key
            assert handle.info["cache"] == "hit"
            assert handle.info["mode"] == "cache"
            assert handle.result_dict() == first_payload[key], key
        stats = service.stats()
        # No solver ran for any phase-2 request: neither solve counter
        # moved, and the pool completed nothing new.
        assert (stats["pool_solves"], stats["serial_solves"],
                stats["pool"]["completed"]) == solves_after_phase1
        assert stats["cache_hits"] == len(phase2)
        assert stats["submits"] == 20
        assert stats["errors"] == 0


# ---------------------------------------------------------------------------
# Worker loss


def test_sigkilled_workers_requests_still_complete(baselines, tmp_path):
    nets, specs, payloads = baselines
    with AnalysisService(cache_dir=str(tmp_path / "cache"),
                         workers=1) as service:
        h1 = service.submit(nets["phil4"], specs["default"])
        h2 = service.submit(nets["figure1"], specs["default"])
        pids = service.pool.worker_pids()
        assert pids
        os.kill(pids[0], signal.SIGKILL)
        # Both requests complete anyway — respawn or serial fallback.
        assert semantic(h1.result_dict()) == \
            semantic(payloads[("phil4", "default")])
        assert semantic(h2.result_dict()) == \
            semantic(payloads[("figure1", "default")])
        stats = service.stats()
        assert stats["errors"] == 0
        recovered = (stats["pool"]["respawns"] >= 1
                     or stats["serial_solves"] >= 1)
        assert recovered, stats


def test_unavailable_pool_degrades_to_serial(baselines):
    nets, specs, payloads = baselines
    with AnalysisService(workers=2,
                         harness=_NoWorkersHarness()) as service:
        handle = service.submit(nets["figure1"], specs["default"])
        assert handle.done()  # serial solves resolve at submit time
        assert handle.info["mode"] == "serial"
        assert semantic(handle.result_dict()) == \
            semantic(payloads[("figure1", "default")])
        assert service.stats()["serial_solves"] == 1
        assert service.stats()["pool"]["mode"] == "serial-fallback"


# ---------------------------------------------------------------------------
# Checkpoint resume across services (PR 7 integration)


def test_cache_miss_resumes_from_prior_services_checkpoint(baselines,
                                                           tmp_path):
    nets, specs, payloads = baselines
    ckpt_dir = tmp_path / "ckpt"
    ckpt_dir.mkdir()
    # Service A solves cold and leaves a final checkpoint behind.
    with AnalysisService(cache_dir=str(tmp_path / "cache-a"),
                         workers=0,
                         checkpoint_dir=str(ckpt_dir)) as first:
        cold = first.submit(nets["phil4"], specs["default"])
        cold_payload = cold.result_dict()
        assert cold_payload["spec"]["resume"] is True
        assert list(ckpt_dir.glob("*.ckpt"))
    # Service B shares the checkpoint dir but has an *empty* cache:
    # the miss resumes A's finished fixpoint instead of cold-starting.
    with AnalysisService(cache_dir=str(tmp_path / "cache-b"),
                         workers=0,
                         checkpoint_dir=str(ckpt_dir)) as second:
        handle = second.submit(nets["phil4"], specs["default"])
        payload = handle.result_dict()
        assert handle.info["cache"] == "miss"
        resume = payload["extras"]["resume"]
        assert resume["status"] == "resumed"
        assert payload["markings"] == cold_payload["markings"]

    # The injected fields are non-semantic: both services used the
    # same cache key a checkpoint-less client would.
    plain = AnalysisService(workers=0)
    try:
        bare = plain.submit(nets["phil4"], specs["default"])
        assert bare.key == handle.key == cold.key
    finally:
        plain.close()


# ---------------------------------------------------------------------------
# Budgets: partial results must never leak across requests


def test_budget_fields_are_a_nonsemantic_subset():
    """Every dedupe-guarded budget knob must be cache-key-excluded
    (that exclusion is *why* the guard exists), and semantic fields
    need no guard — they fracture the key instead."""
    from repro.analysis.spec import NONSEMANTIC_FIELDS
    from repro.service.server import BUDGET_FIELDS
    assert set(BUDGET_FIELDS) <= set(NONSEMANTIC_FIELDS)


def test_partial_result_is_not_cached(tmp_path):
    """Budgets are excluded from the cache key, so a budget-truncated
    partial stored there would answer a later unbudgeted request with
    lower-bound statistics.  It must stay uncached."""
    from repro.petri.generators import philosophers
    net = philosophers(6)
    with AnalysisService(cache_dir=str(tmp_path / "cache"),
                         workers=0) as service:
        tight = service.submit(net, AnalysisSpec(node_budget=50))
        partial = tight.result_dict()
        assert partial["status"] == "partial"
        # Same cache key, no budget: a miss that solves for real.
        full = service.submit(net, AnalysisSpec())
        assert full.key == tight.key
        assert full.info["cache"] == "miss"
        payload = full.result_dict()
        assert payload["status"] == "complete"
        assert payload["markings"] > partial["markings"]
        # Only the complete solve was cached.
        hit = service.submit(net, AnalysisSpec())
        assert hit.info["cache"] == "hit"
        assert hit.result_dict() == payload


def test_dedupe_only_attaches_to_covering_budgets(tmp_path):
    """An unbudgeted submit must not attach to an in-flight solve
    running under a tight budget — it could be resolved with that
    solve's partial result."""
    from repro.petri.generators import philosophers
    net = philosophers(6)
    with AnalysisService(cache_dir=str(tmp_path / "cache"),
                         workers=1) as service:
        tight = service.submit(net, AnalysisSpec(node_budget=50))
        assert tight.info["dedup"] is False
        # Unbudgeted: the tight solve does not cover it — fresh solve.
        full = service.submit(net, AnalysisSpec())
        assert full.info["dedup"] is False
        # A tighter budget is covered by the tight in-flight solve...
        tighter = service.submit(net, AnalysisSpec(node_budget=40))
        assert tighter.info["dedup"] is True
        # ...and a looser one by the unbudgeted in-flight solve.
        loose = service.submit(net, AnalysisSpec(node_budget=10 ** 9))
        assert loose.info["dedup"] is True
        assert service.stats()["dedup_hits"] == 2

        assert tight.result_dict()["status"] == "partial"
        assert tighter.result_dict()["status"] == "partial"
        full_payload = full.result_dict()
        assert full_payload["status"] == "complete"
        assert loose.result_dict() == full_payload
        assert full_payload["markings"] > tight.result_dict()["markings"]


# ---------------------------------------------------------------------------
# Errors and handle contract


def test_failed_analysis_raises_service_error(baselines):
    nets, specs, _ = baselines
    with AnalysisService(workers=0) as service:
        handle = service.submit(nets["phil4"],
                                specs["default"].replace(
                                    max_iterations=1))
        with pytest.raises(ServiceError) as excinfo:
            handle.result()
        assert excinfo.value.kind == "TraversalLimitError"
        assert handle.error is excinfo.value
        assert service.stats()["errors"] == 1
        # A failure is not cached: the next submit solves again.
        again = service.submit(nets["phil4"], specs["default"])
        assert again.result().markings > 0


def test_errors_do_not_fracture_healthy_requests(baselines, tmp_path):
    nets, specs, payloads = baselines
    with AnalysisService(cache_dir=str(tmp_path / "cache"),
                         workers=1) as service:
        bad = service.submit(nets["phil4"],
                             specs["default"].replace(max_iterations=1))
        good = service.submit(nets["figure1"], specs["default"])
        with pytest.raises(ServiceError):
            bad.result()
        assert semantic(good.result_dict()) == \
            semantic(payloads[("figure1", "default")])


def test_handle_info_and_result_contract(baselines, tmp_path):
    nets, specs, _ = baselines
    with AnalysisService(cache_dir=str(tmp_path / "cache"),
                         workers=0) as service:
        handle = service.submit(nets["figure1"], specs["default"])
        result = handle.result()
        assert result.markings == 8
        assert result.reachable is None  # JSON round trip, by design
        assert handle.info["cache"] == "miss"
        assert handle.info["miss_reason"] == "absent"
        assert handle.info["key"] == list(handle.key)
        hit = service.submit(nets["figure1"], specs["default"])
        assert hit.info == {"cache": "hit", "tier": "memory",
                            "mode": "cache", "dedup": False,
                            "key": list(handle.key)}


def test_shared_cache_object_between_services(baselines):
    """Two services can share one ResultCache (e.g. one per thread)."""
    nets, specs, _ = baselines
    cache = ResultCache()
    with AnalysisService(cache=cache, workers=0) as first:
        first.submit(nets["figure1"], specs["default"]).result_dict()
    with AnalysisService(cache=cache, workers=0) as second:
        handle = second.submit(nets["figure1"], specs["default"])
        assert handle.info["cache"] == "hit"
