"""Unit tests for the symbolic model checker."""

import pytest

from repro.encoding import ImprovedEncoding, SparseEncoding
from repro.petri import Marking
from repro.petri.generators import (dme_spec, figure1_net, figure4_net,
                                    muller, slotted_ring)
from repro.symbolic import ModelChecker, SymbolicNet


@pytest.fixture(scope="module")
def fig1():
    return ModelChecker(SymbolicNet(ImprovedEncoding(figure1_net())))


@pytest.fixture(scope="module")
def fig4():
    return ModelChecker(SymbolicNet(ImprovedEncoding(figure4_net())))


class TestReachability:
    def test_reachable_markings(self, fig1):
        assert fig1.is_reachable(Marking(["p1"]))
        assert fig1.is_reachable(Marking(["p6", "p7"]))

    def test_unreachable_marking(self, fig1):
        assert not fig1.is_reachable(Marking(["p2", "p5"]))

    def test_marking_count(self, fig1, fig4):
        assert fig1.marking_count() == 8
        assert fig4.marking_count() == 22


class TestDeadlocks:
    def test_figure1_deadlock_free(self, fig1):
        report = fig1.find_deadlocks()
        assert not report
        assert report.witness is None

    def test_figure4_deadlocks_found(self, fig4):
        report = fig4.find_deadlocks()
        assert report
        assert "2 deadlocked" in report.detail
        witness = report.witness
        # The witness is a real deadlock: both philosophers hold one fork.
        assert witness is not None
        assert (witness.support >= {"p6", "p12"}
                or witness.support >= {"p7", "p13"})

    def test_muller_deadlock_free(self):
        checker = ModelChecker(SymbolicNet(ImprovedEncoding(muller(3))))
        assert not checker.find_deadlocks()


class TestMutualExclusion:
    def test_smc_places_are_exclusive(self, fig1):
        """Places of one SMC can never be marked together (Theorem 2.1)."""
        assert fig1.check_mutual_exclusion(["p1", "p2", "p4", "p6"])

    def test_concurrent_places_are_not_exclusive(self, fig1):
        report = fig1.check_mutual_exclusion(["p2", "p3"])
        assert not report
        assert report.witness == Marking(["p2", "p3"])

    def test_dme_critical_sections_exclusive(self):
        net = dme_spec(3)
        checker = ModelChecker(SymbolicNet(ImprovedEncoding(net)))
        critical = [f"c{i}_uc" for i in range(3)]
        assert checker.check_mutual_exclusion(critical)


class TestInvariants:
    def test_tautological_invariant(self, fig1):
        from repro.bdd import true
        assert fig1.check_invariant(true(fig1.symnet.bdd))

    def test_place_invariant(self, fig1):
        """p1 or p6 or ... : one place of SM1 is always marked."""
        pred = (fig1.place_predicate("p1") | fig1.place_predicate("p2")
                | fig1.place_predicate("p4") | fig1.place_predicate("p6"))
        assert fig1.check_invariant(pred)

    def test_violated_invariant_gives_witness(self, fig1):
        report = fig1.check_invariant(~fig1.place_predicate("p1"))
        assert not report
        assert report.witness == Marking(["p1"])


class TestCtl:
    def test_ef_from_initial(self, fig1):
        """EF(p6 & p7) holds at the initial marking."""
        target = fig1.place_predicate("p6") & fig1.place_predicate("p7")
        ef = fig1.ef(target)
        assert not (ef & fig1.symnet.initial).is_zero()

    def test_ef_of_unreachable_is_empty(self, fig1):
        bad = fig1.place_predicate("p2") & fig1.place_predicate("p5")
        assert fig1.ef(bad).is_zero()

    def test_ag_of_reachable_true(self, fig1):
        from repro.bdd import true
        assert fig1.ag(true(fig1.symnet.bdd)) == fig1.reachable

    def test_home_marking(self, fig1):
        """Figure 1's initial marking is a home marking (AG EF M0)."""
        assert fig1.can_always_recover(fig1.symnet.initial)

    def test_figure4_cannot_always_recover(self, fig4):
        """Deadlocks make the initial marking non-home."""
        report = fig4.can_always_recover(fig4.symnet.initial)
        assert not report
        assert report.witness is not None

    def test_live_transitions(self, fig1):
        assert fig1.live_transitions() == list(
            fig1.symnet.net.transitions)

    def test_enabled_predicate(self, fig1):
        enabled = fig1.enabled_predicate("t1")
        assert not (enabled & fig1.symnet.initial).is_zero()


class TestPrecomputedReachable:
    def test_reuse_reachable_set(self):
        symnet = SymbolicNet(SparseEncoding(slotted_ring(2)))
        from repro.symbolic import traverse
        reached = traverse(symnet).reachable
        checker = ModelChecker(symnet, reachable=reached)
        assert checker.marking_count() == 40
