"""Cross-engine differential harness: every engine, same marking sets.

Runs each generator family through the BDD relational engines
(monolithic / partitioned / chained over ``RelationalNet``) and every
ZDD engine (classic per-transition plus the relational
monolithic / partitioned / chained over ``ZddRelationalNet``) and
asserts they all compute *identical* reachable sets — identical counts
and identical marking sets — against the explicit-enumeration oracle.

Set identity, not just cardinality: the ZDD families are decoded to
marking supports and compared exactly; the BDD sets are checked by
containment of every explicit marking's cube, which together with the
count match pins the set.

Small instances run in tier-1; the large configurations are marked
``slow`` (run with ``-m slow``, as the CI workflow does).
"""

import pytest

from repro.bdd import cube
from repro.encoding import ImprovedEncoding
from repro.petri import Marking, ReachabilityGraph
from repro.symbolic import (RelationalNet, ZddNet, ZddRelationalNet,
                            traverse_relational, traverse_zdd)

# Every generator family in tier-1 reach, at small sizes.
SMALL_NETS = ["figure1", "phil3", "slot2", "muller3", "dme2", "jjreg-a2"]
# Larger configurations of the same families, outside tier-1.
LARGE_NETS = ["phil6", "slot3", "muller5", "dme3", "dmecir2", "jjreg-a3"]

BDD_ENGINES = ("monolithic", "partitioned", "chained")
ZDD_RELATIONAL_ENGINES = ("monolithic", "partitioned", "chained")


def explicit_marking_set(net):
    graph = ReachabilityGraph(net, max_markings=200_000)
    return {m.support for m in graph.markings}


def assert_bdd_set_matches(relnet, reached, count, explicit, context):
    """Count match + containment of every explicit marking == identity."""
    assert count == len(explicit), context
    bdd = relnet.bdd
    for support in sorted(explicit):
        assignment = relnet.encoding.marking_to_assignment(
            Marking(sorted(support)))
        marking_cube = cube(bdd, assignment)
        assert (marking_cube & reached) == marking_cube, \
            (context, sorted(support))


def run_differential_matrix(name, make_net):
    # One explicit enumeration per net serves as both the marking-set
    # oracle and (via len) the count oracle.
    net = make_net(name)
    explicit = explicit_marking_set(net)
    assert explicit

    for engine in BDD_ENGINES:
        relnet = RelationalNet(ImprovedEncoding(make_net(name)))
        result = traverse_relational(relnet, engine=engine,
                                     cluster_size="auto")
        assert_bdd_set_matches(relnet, result.reachable,
                               result.marking_count, explicit,
                               (name, f"bdd/{engine}"))

    classic = ZddNet(make_net(name))
    result = traverse_zdd(classic)
    assert result.marking_count == len(explicit), (name, "zdd/classic")
    decoded = {m.support for m in classic.markings_of(result.reachable)}
    assert decoded == explicit, (name, "zdd/classic")

    for engine in ZDD_RELATIONAL_ENGINES:
        relnet = ZddRelationalNet(make_net(name))
        result = traverse_zdd(relnet, engine=engine, cluster_size="auto")
        assert result.marking_count == len(explicit), \
            (name, f"zdd/{engine}")
        decoded = {m.support for m in relnet.markings_of(result.reachable)}
        assert decoded == explicit, (name, f"zdd/{engine}")


@pytest.mark.parametrize("name", SMALL_NETS)
def test_engines_agree_small(name, make_net):
    run_differential_matrix(name, make_net)


@pytest.mark.slow
@pytest.mark.parametrize("name", LARGE_NETS)
def test_engines_agree_large(name, make_net):
    run_differential_matrix(name, make_net)


@pytest.mark.parametrize("name", SMALL_NETS)
def test_zdd_engines_agree_with_reorder_enabled(name, make_net):
    """Acceptance for the shared DD kernel: every ZDD engine with
    dynamic reordering on (pair-grouped sifting for the relational
    engines, per-element sifting for classic) pins the identical
    marking *sets* against the explicit oracle — sifting, GC and the
    reorder-hook reclustering must never change the computed family."""
    net = make_net(name)
    explicit = explicit_marking_set(net)
    assert explicit

    classic = ZddNet(make_net(name), auto_reorder=True,
                     reorder_threshold=50)
    result = traverse_zdd(classic)
    decoded = {m.support for m in classic.markings_of(result.reachable)}
    assert decoded == explicit, (name, "zdd/classic+reorder")

    for engine in ZDD_RELATIONAL_ENGINES:
        relnet = ZddRelationalNet(make_net(name), auto_reorder=True,
                                  reorder_threshold=50)
        result = traverse_zdd(relnet, engine=engine, cluster_size="auto")
        assert result.marking_count == len(explicit), \
            (name, f"zdd/{engine}+reorder")
        decoded = {m.support for m in relnet.markings_of(result.reachable)}
        assert decoded == explicit, (name, f"zdd/{engine}+reorder")


def test_cluster_sizes_do_not_change_the_set(make_net, explicit_counts):
    """Granularity sweep on one net: every cluster_size, same set."""
    expected = explicit_counts["slot2"]
    for cluster_size in (1, 2, 8, "auto"):
        relnet = ZddRelationalNet(make_net("slot2"))
        result = traverse_zdd(relnet, engine="chained",
                              cluster_size=cluster_size)
        assert result.marking_count == expected, cluster_size


# ---------------------------------------------------------------------------
# Portfolio differential: the race's verdict vs every member's.

from repro.analysis import (DEFAULT_PORTFOLIO_MEMBERS, Analysis,
                            AnalysisSpec, PortfolioBackend,
                            WorkerHarness, analyze, member_spec)
from repro.symbolic.checker import ModelChecker


class _SerialOnlyHarness(WorkerHarness):
    """Forces the in-process serial path: the first member always wins,
    which lets the matrix below pin *every* possible winner
    deterministically instead of whoever happens to finish first."""

    def available(self):
        return False


def _forced_winner_result(net, members):
    spec = AnalysisSpec(backend="portfolio", portfolio_members=members)
    backend = PortfolioBackend(harness=_SerialOnlyHarness())
    session = backend.build(net, spec)
    return session, session.run()


@pytest.mark.parametrize("name", SMALL_NETS)
def test_portfolio_agrees_with_every_member(name, make_net,
                                            explicit_counts):
    """Every member individually, then the portfolio with each member
    forced to win, all against the explicit oracle — a wrong verdict
    from any engine or any mixup in the race plumbing fails here."""
    expected = explicit_counts[name]
    parent = AnalysisSpec(backend="portfolio")

    # Each member run directly computes the oracle count.
    for member in DEFAULT_PORTFOLIO_MEMBERS:
        result = analyze(make_net(name), member_spec(parent, member))
        assert result.markings == expected, (name, member)

    # Each possible forced winner reports the same count, attributed
    # to the right member.
    n = len(DEFAULT_PORTFOLIO_MEMBERS)
    for shift in range(n):
        rotation = tuple(DEFAULT_PORTFOLIO_MEMBERS[(shift + i) % n]
                         for i in range(n))
        _, result = _forced_winner_result(make_net(name), rotation)
        race = result.extras["portfolio"]
        assert race["winner"] == rotation[0], (name, rotation)
        assert result.markings == expected, (name, rotation)


@pytest.mark.parametrize("name", ["figure1", "muller3"])
def test_portfolio_checker_answers_match_direct_run(name, make_net):
    """With a BDD-functional winner the portfolio session supports
    model checking; its deadlock answer must equal a direct run's."""
    session, result = _forced_winner_result(
        make_net(name), ("bdd-functional", "zdd-chained"))
    assert session.supports_model_checking
    portfolio_deadlocks = ModelChecker(
        session.symbolic_net,
        reachable=result.reachable).find_deadlocks()

    direct = Analysis(make_net(name), AnalysisSpec(form="functional"))
    direct_deadlocks = direct.checker().find_deadlocks()

    assert portfolio_deadlocks.holds == direct_deadlocks.holds
    assert result.markings == direct.result.markings


@pytest.mark.slow
def test_portfolio_process_race_agrees_large(make_net, explicit_counts):
    """A real worker-process race on phil6 lands on the oracle count
    no matter which member wins."""
    result = analyze(make_net("phil6"),
                     AnalysisSpec(backend="portfolio", timeout=300.0))
    assert result.markings == explicit_counts["phil6"]
    assert result.extras["portfolio"]["winner"] in \
        DEFAULT_PORTFOLIO_MEMBERS


# ---------------------------------------------------------------------------
# Kill-and-resume: a SIGKILLed analysis resumes to the oracle set.

import os
import signal
import time as _time


def _slow_checkpointing_worker(net_text, spec_values, delay):
    """Top-level so it pickles under every start method: steps the
    fixpoint with a sleep after each safe point, so the parent can
    SIGKILL it mid-fixpoint with a completed checkpoint on disk."""
    from repro.analysis import AnalysisSpec
    from repro.analysis.backends import backend_for
    from repro.petri.parser import loads
    net = loads(net_text)
    spec = AnalysisSpec.from_dict(spec_values)
    session = backend_for(spec).build(net, spec)
    while not session.at_fixpoint():
        session.step()
        _time.sleep(delay)
    session.run()


def _workers_available():
    import multiprocessing
    try:
        probe = multiprocessing.get_context().Queue()
        probe.close()
        probe.join_thread()
    except Exception:
        return False
    return True


@pytest.mark.parametrize("name", SMALL_NETS)
def test_kill_and_resume_matches_oracle(name, make_net, explicit_counts,
                                        tmp_path):
    """Satellite acceptance: SIGKILL a real worker process mid-fixpoint,
    resume from its checkpoint in-process, and land exactly on the
    uninterrupted explicit-enumeration oracle — on every generator
    family."""
    import multiprocessing
    if not _workers_available():
        pytest.skip("multiprocessing unavailable in this environment")
    from repro.petri.parser import dumps
    path = str(tmp_path / f"{name}.ckpt")
    spec = AnalysisSpec(form="relational", engine="chained",
                        checkpoint_path=path)
    process = multiprocessing.get_context().Process(
        target=_slow_checkpointing_worker,
        args=(dumps(make_net(name)), spec.to_dict(), 0.2),
        daemon=True)
    process.start()
    try:
        deadline = _time.monotonic() + 30.0
        # The checkpoint is renamed into place atomically, so existence
        # means a complete, sealed file — safe to kill any time after.
        while not os.path.exists(path) \
                and _time.monotonic() < deadline:
            _time.sleep(0.01)
        assert os.path.exists(path), "worker never reached a checkpoint"
        os.kill(process.pid, signal.SIGKILL)
    finally:
        process.join(10.0)

    resumed = analyze(make_net(name), spec.replace(resume=True))
    assert resumed.extras["resume"]["status"] == "resumed"
    assert resumed.markings == explicit_counts[name]
    assert resumed.status == "complete"


# ---------------------------------------------------------------------------
# Parallel partitioned-mp differential: the worker pool vs the serial
# partitioned engine vs the explicit oracle, on every generator family.

from repro.symbolic import ParallelPartitionedImageEngine, ParallelZddEngine


def _sweep_workers_available():
    import multiprocessing
    if multiprocessing.current_process().daemon:
        return False
    return _workers_available()


@pytest.mark.parametrize("name", SMALL_NETS)
def test_partitioned_mp_agrees_small(name, make_net):
    """Acceptance: ``partitioned-mp`` with workers=2 (BDD and ZDD)
    computes the identical reachable marking *set* as the serial
    partitioned engine and the explicit oracle on every family."""
    if not _sweep_workers_available():
        pytest.skip("multiprocessing unavailable in this environment")
    net = make_net(name)
    explicit = explicit_marking_set(net)
    assert explicit

    serial_net = RelationalNet(ImprovedEncoding(make_net(name)))
    serial = traverse_relational(serial_net, engine="partitioned",
                                 cluster_size="auto")
    assert serial.marking_count == len(explicit), (name, "serial")

    relnet = RelationalNet(ImprovedEncoding(make_net(name)))
    engine = ParallelPartitionedImageEngine(relnet, cluster_size="auto",
                                            workers=2)
    try:
        result = traverse_relational(relnet, engine=engine)
        stats = engine.parallel_stats()
    finally:
        engine.close()
    assert stats["mode"] == "process", (name, stats)
    assert result.marking_count == serial.marking_count
    assert_bdd_set_matches(relnet, result.reachable,
                           result.marking_count, explicit,
                           (name, "bdd/partitioned-mp"))

    zrelnet = ZddRelationalNet(make_net(name))
    zengine = ParallelZddEngine(zrelnet, cluster_size="auto", workers=2)
    try:
        zresult = traverse_zdd(zrelnet, engine=zengine)
        zstats = zengine.parallel_stats()
    finally:
        zengine.close()
    assert zstats["mode"] == "process", (name, zstats)
    assert zresult.marking_count == len(explicit), \
        (name, "zdd/partitioned-mp")
    decoded = {m.support for m in zrelnet.markings_of(zresult.reachable)}
    assert decoded == explicit, (name, "zdd/partitioned-mp")


def test_partitioned_mp_sigkill_worker_falls_back_serial(make_net,
                                                         explicit_counts):
    """Satellite acceptance: SIGKILL one pool worker mid-fixpoint; its
    blocks are evaluated serially in the parent (structured crash
    record), the slot respawns (then retires on a second kill) and the
    reached set still lands exactly on the oracle."""
    if not _sweep_workers_available():
        pytest.skip("multiprocessing unavailable in this environment")
    name = "phil3"
    relnet = RelationalNet(ImprovedEncoding(make_net(name)))
    engine = ParallelPartitionedImageEngine(relnet, cluster_size="auto",
                                            workers=2)
    try:
        reached = frontier = engine.initial
        reached, frontier = engine.advance(reached, frontier)
        sweep = engine.sweep
        assert sweep.mode == "process"

        def kill_worker_zero():
            victim = sweep.slots[0].process
            os.kill(victim.pid, signal.SIGKILL)
            victim.join(10.0)
            assert not victim.is_alive()

        # First kill: the dead worker's blocks fall back to serial
        # evaluation this step and the slot respawns.
        kill_worker_zero()
        assert not frontier.is_zero(), "net fixpointed too early for " \
                                       "the kill to be observable"
        reached, frontier = engine.advance(reached, frontier)
        stats = engine.parallel_stats()
        crash = stats["crashes"][0]
        assert crash["worker"] == 0
        assert crash["action"] == "respawn"
        assert crash["blocks"] > 0
        if stats["queue_resets"]:
            # Rare race: the SIGKILL caught worker 0's queue feeder
            # thread holding the shared result queue's write lock, so
            # the survivor could never reply.  The pool declares the
            # queue wedged, rebuilds it, and recycles the survivor
            # through the same crash path.
            assert [c["worker"] for c in stats["crashes"]] == [0, 1]
        else:
            assert len(stats["crashes"]) == 1

        # Second kill: past MAX_RESPAWNS the slot retires and its
        # blocks re-pin onto the survivor.
        kill_worker_zero()
        while not frontier.is_zero():
            reached, frontier = engine.advance(reached, frontier)
        stats = engine.parallel_stats()
        assert [c["action"] for c in stats["crashes"]
                if c["worker"] == 0] == ["respawn", "retire"]
    finally:
        engine.close()
    assert relnet.count_markings(reached) == explicit_counts[name]
