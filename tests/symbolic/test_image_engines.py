"""Tests for partitioned transition relations and the image engines.

Covers the three acceptance properties of the relational-product layer:
``and_exists`` agrees with (but never materialises) the conjunction, the
partition blocks compose to exactly the per-transition image union, and
all image engines reach the same fixpoint on the generator nets.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.encoding import DenseEncoding, ImprovedEncoding, SparseEncoding
from repro.petri import ReachabilityGraph
from repro.petri.generators import (figure1_net, figure4_net, muller,
                                    philosophers, slotted_ring)
from repro.symbolic import (IMAGE_ENGINES, RelationalNet, SymbolicNet,
                            cluster_by_support, make_image_engine, traverse,
                            traverse_relational)

# Net instances come from the shared fixtures in tests/conftest.py
# (make_net builds them, explicit_counts is the enumeration oracle).
FAMILIES = ["figure1", "figure4", "muller4", "slot2", "phil3"]
SCHEMES = [SparseEncoding, DenseEncoding, ImprovedEncoding]


# ---------------------------------------------------------------------
# The fused relational product
# ---------------------------------------------------------------------

class TestAndExists:
    def test_agrees_with_materialised_composition(self, make_net):
        """``and_exists(S, R, cube)`` == ``exists(S AND R, cube)`` on the
        real relation BDDs of every generator family."""
        for name in FAMILIES:
            relnet = RelationalNet(ImprovedEncoding(make_net(name)))
            bdd = relnet.bdd
            states = relnet.initial
            for transition in relnet.net.transitions:
                relation = relnet.relations[transition]
                fused = bdd.and_exists(states.node, relation.node,
                                       relnet.current)
                materialised = bdd.exists(
                    bdd.apply_and(states.node, relation.node),
                    relnet.current)
                assert fused == materialised

    def test_never_builds_the_full_conjunction(self):
        """The one-pass product must not conjoin the operands wholesale;
        only strict subproblems may reach ``apply_and`` (via the
        below-quantification fallback)."""
        relnet = RelationalNet(ImprovedEncoding(muller(4)))
        bdd = relnet.bdd
        relation = relnet.monolithic_relation()
        states = traverse_relational(relnet, engine="chained").reachable
        bdd.clear_caches()
        conjoined = []
        original = bdd.apply_and

        def spy(u, v):
            conjoined.append(frozenset((u, v)))
            return original(u, v)

        bdd.apply_and = spy
        try:
            bdd.and_exists(states.node, relation.node, relnet.current)
        finally:
            bdd.apply_and = original
        assert frozenset((states.node, relation.node)) not in conjoined

    def test_empty_cube_degenerates_to_and(self):
        relnet = RelationalNet(SparseEncoding(figure1_net()))
        bdd = relnet.bdd
        relation = relnet.monolithic_relation()
        assert bdd.and_exists(relnet.initial.node, relation.node, ()) \
            == bdd.apply_and(relnet.initial.node, relation.node)

    def test_dedicated_cache_survives_and_clears(self):
        relnet = RelationalNet(ImprovedEncoding(figure4_net()))
        bdd = relnet.bdd
        relation = relnet.monolithic_relation()
        bdd.and_exists(relnet.initial.node, relation.node, relnet.current)
        assert bdd.ae_calls > 0 and bdd.ae_recursions > 0
        before = bdd.ae_cache_hits
        bdd.and_exists(relnet.initial.node, relation.node, relnet.current)
        assert bdd.ae_cache_hits > before
        bdd.clear_caches()
        assert not bdd._ae_cache


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_randomized_state_sets_image_equivalence(seed):
    """Random reachable-subset images: fused == materialised, and the
    sparse partition blocks union to the per-transition image union."""
    import random

    rng = random.Random(seed)
    net = muller(3) if seed % 2 else slotted_ring(2)
    relnet = RelationalNet(ImprovedEncoding(net))
    bdd = relnet.bdd
    graph = ReachabilityGraph(net)
    markings = sorted(graph.markings, key=lambda m: sorted(m.support))
    chosen = rng.sample(markings, rng.randint(1, len(markings)))
    states = relnet.initial
    from repro.bdd import cube
    for marking in chosen:
        assignment = relnet.encoding.marking_to_assignment(marking)
        states = states | cube(bdd, assignment)

    # fused vs materialised, through the monolithic relation
    relation = relnet.monolithic_relation()
    fused = bdd.and_exists(states.node, relation.node, relnet.current)
    materialised = bdd.exists(bdd.apply_and(states.node, relation.node),
                              relnet.current)
    assert fused == materialised

    # partition blocks vs per-transition images, at several granularities
    per_transition = relnet.image_all(states)
    for cluster_size in (1, 2, 8):
        blocks = relnet.partitions(cluster_size)
        assert relnet.image_partitioned(states, blocks) == per_transition


# ---------------------------------------------------------------------
# Partitioning
# ---------------------------------------------------------------------

class TestPartitions:
    def test_every_transition_in_exactly_one_block(self):
        relnet = RelationalNet(ImprovedEncoding(philosophers(3)))
        for cluster_size in (1, 2, 5, 100):
            blocks = relnet.partitions(cluster_size)
            seen = [t for block in blocks for t in block.transitions]
            assert sorted(seen) == sorted(relnet.net.transitions)
            assert all(len(block.transitions) <= max(1, cluster_size)
                       for block in blocks)

    def test_blocks_are_support_sorted(self):
        relnet = RelationalNet(ImprovedEncoding(slotted_ring(3)))
        blocks = relnet.partitions(4)
        tops = [block.top_level for block in blocks]
        assert tops == sorted(tops)

    def test_partition_cache_by_granularity(self):
        relnet = RelationalNet(ImprovedEncoding(figure4_net()))
        assert relnet.partitions(2) is relnet.partitions(2)
        assert relnet.partitions(2) is not relnet.partitions(3)

    def test_invalid_cluster_size_rejected(self):
        relnet = RelationalNet(ImprovedEncoding(figure4_net()))
        with pytest.raises(ValueError):
            relnet.partitions(0)

    def test_sparse_block_support_is_local(self):
        """Per-transition sparse relations must not mention every
        variable the way the identity-complete relations do."""
        relnet = RelationalNet(ImprovedEncoding(philosophers(4)))
        full_width = 2 * len(relnet.current)
        widths = [len(block.support) for block in relnet.partitions(1)]
        assert max(widths) < full_width

    def test_cluster_by_support_chunks_in_order(self):
        supports = {"a": frozenset({3}), "b": frozenset({0}),
                    "c": frozenset({1}), "d": frozenset()}
        clusters = cluster_by_support(["a", "b", "c", "d"],
                                      supports.__getitem__, lambda v: v, 2)
        assert clusters == [["b", "c"], ["a", "d"]]
        singletons = cluster_by_support(["a", "b", "c", "d"],
                                        supports.__getitem__, lambda v: v, 1)
        assert singletons == [["b"], ["c"], ["a"], ["d"]]


# ---------------------------------------------------------------------
# Engines
# ---------------------------------------------------------------------

class TestImageEngines:
    @pytest.mark.parametrize("name", FAMILIES)
    @pytest.mark.parametrize("engine", IMAGE_ENGINES)
    def test_engines_reach_explicit_fixpoint(self, name, engine, make_net,
                                             explicit_counts):
        relnet = RelationalNet(ImprovedEncoding(make_net(name)))
        result = traverse_relational(relnet, engine=engine, cluster_size=3)
        assert result.marking_count == explicit_counts[name]
        assert result.engine == f"relational/{engine}"

    @pytest.mark.parametrize("scheme", SCHEMES,
                             ids=[s.__name__ for s in SCHEMES])
    @pytest.mark.parametrize("cluster_size", [1, 4])
    def test_engines_agree_across_schemes(self, scheme, cluster_size,
                                          make_net, explicit_counts):
        for name in ("figure4", "slot2"):
            counts = {
                traverse_relational(RelationalNet(scheme(make_net(name))),
                                    engine=engine,
                                    cluster_size=cluster_size).marking_count
                for engine in IMAGE_ENGINES}
            assert counts == {explicit_counts[name]}

    def test_engines_match_functional_traversal(self, make_net,
                                                explicit_counts):
        for name in FAMILIES:
            functional = traverse(
                SymbolicNet(ImprovedEncoding(make_net(name))),
                use_toggle=True, strategy="chaining",
                chain_order="support")
            relational = traverse_relational(
                RelationalNet(ImprovedEncoding(make_net(name))),
                engine="chained", cluster_size=2)
            assert functional.marking_count == relational.marking_count \
                == explicit_counts[name]

    def test_chained_cuts_iterations(self):
        relnet_bfs = RelationalNet(ImprovedEncoding(slotted_ring(3)))
        bfs = traverse_relational(relnet_bfs, engine="partitioned")
        relnet_chained = RelationalNet(ImprovedEncoding(slotted_ring(3)))
        chained = traverse_relational(relnet_chained, engine="chained")
        assert chained.iterations < bfs.iterations
        assert chained.marking_count == bfs.marking_count

    def test_engine_instance_accepted(self):
        relnet = RelationalNet(ImprovedEncoding(figure4_net()))
        engine = make_image_engine(relnet, "chained", cluster_size=2)
        result = traverse_relational(relnet, engine=engine)
        assert result.engine == "relational/chained"

    def test_unknown_engine_rejected(self):
        relnet = RelationalNet(ImprovedEncoding(figure4_net()))
        with pytest.raises(ValueError):
            traverse_relational(relnet, engine="quantum")

    def test_max_iterations_guard(self):
        relnet = RelationalNet(ImprovedEncoding(slotted_ring(2)))
        with pytest.raises(RuntimeError):
            traverse_relational(relnet, engine="partitioned",
                                max_iterations=1)

    def test_monolithic_flag_still_works(self):
        relnet = RelationalNet(ImprovedEncoding(figure4_net()))
        result = traverse_relational(relnet, monolithic=True)
        assert result.engine == "relational/monolithic"

    @pytest.mark.parametrize("junk", [0, -3, 2.5, "junk", None, True])
    def test_bad_cluster_size_rejected_up_front(self, junk):
        """make_image_engine must fail fast with a message naming the
        valid values, not deep inside partitions()."""
        relnet = RelationalNet(ImprovedEncoding(figure4_net()))
        with pytest.raises(ValueError, match="auto"):
            make_image_engine(relnet, "chained", cluster_size=junk)

    def test_unknown_engine_message_names_engines(self):
        relnet = RelationalNet(ImprovedEncoding(figure4_net()))
        with pytest.raises(ValueError, match="monolithic"):
            make_image_engine(relnet, "quantum")


# ---------------------------------------------------------------------
# Adaptive traversal: reordering, frontier restriction, auto clusters
# ---------------------------------------------------------------------

class TestAdaptiveTraversal:
    @pytest.mark.parametrize("name", FAMILIES)
    @pytest.mark.parametrize("engine", IMAGE_ENGINES)
    def test_engines_agree_with_reordering_enabled(self, name, engine,
                                                   make_net,
                                                   explicit_counts):
        """Acceptance: identical reachable sets with dynamic reordering
        (pair-grouped sifting + partition refresh) and auto clustering."""
        relnet = RelationalNet(ImprovedEncoding(make_net(name)),
                               auto_reorder=True, reorder_threshold=200)
        result = traverse_relational(relnet, engine=engine,
                                     cluster_size="auto",
                                     simplify_frontier=True)
        assert result.marking_count == explicit_counts[name]

    def test_auto_reorder_honored_on_supplied_manager(self,
                                                      explicit_counts):
        from repro.bdd import BDD
        relnet = RelationalNet(ImprovedEncoding(philosophers(3)),
                               bdd=BDD(), auto_reorder=True,
                               reorder_threshold=100)
        assert relnet.bdd.auto_reorder
        result = traverse_relational(relnet, engine="chained")
        assert result.reorder_count > 0
        assert result.marking_count == explicit_counts["phil3"]

    def test_reordering_actually_happens(self, explicit_counts):
        relnet = RelationalNet(ImprovedEncoding(philosophers(3)),
                               auto_reorder=True, reorder_threshold=100)
        result = traverse_relational(relnet, engine="chained",
                                     cluster_size=2)
        assert result.reorder_count > 0
        assert result.marking_count == explicit_counts["phil3"]

    def test_pairs_stay_adjacent_after_traversal_reorder(self):
        relnet = RelationalNet(ImprovedEncoding(slotted_ring(2)),
                               auto_reorder=True, reorder_threshold=100)
        traverse_relational(relnet, engine="chained")
        assert relnet.bdd.reorder_count > 0
        for name in relnet.current:
            current = relnet.bdd.level_of_var(name)
            nxt = relnet.bdd.level_of_var(name + "'")
            assert nxt == current + 1

    def test_auto_clusters_cover_all_transitions(self):
        relnet = RelationalNet(ImprovedEncoding(philosophers(3)))
        blocks = relnet.partitions("auto")
        seen = [t for block in blocks for t in block.transitions]
        assert sorted(seen) == sorted(relnet.net.transitions)
        tops = [block.top_level for block in blocks]
        assert tops == sorted(tops)

    def test_auto_partitions_cached(self):
        relnet = RelationalNet(ImprovedEncoding(figure4_net()))
        assert relnet.partitions("auto") is relnet.partitions("auto")

    def test_auto_image_equals_per_transition_union(self):
        relnet = RelationalNet(ImprovedEncoding(muller(4)))
        states = relnet.initial
        blocks = relnet.partitions("auto")
        assert relnet.image_partitioned(states, blocks) \
            == relnet.image_all(states)

    def test_simplify_frontier_fixpoints_agree(self, explicit_counts):
        for engine in IMAGE_ENGINES:
            relnet = RelationalNet(ImprovedEncoding(slotted_ring(2)))
            result = traverse_relational(relnet, engine=engine,
                                         simplify_frontier=True)
            assert result.marking_count == explicit_counts["slot2"]

    def test_sparse_relations_cached_across_engine_builds(self):
        """Repeated engine construction (ablation sweeps) must reuse the
        sparse relations and supports instead of re-walking them."""
        relnet = RelationalNet(ImprovedEncoding(philosophers(3)))
        first = relnet.sparse_relations()
        make_image_engine(relnet, "partitioned", 1).partitions
        make_image_engine(relnet, "chained", 4).partitions
        make_image_engine(relnet, "chained", "auto").partitions
        assert relnet.sparse_relations() is first
        transition = relnet.net.transitions[0]
        assert relnet.transition_support(transition) \
            is relnet.transition_support(transition)


class TestPartitionRefresh:
    def reversed_pair_order(self, relnet):
        pairs = [(name, name + "'") for name in relnet.current]
        return [v for pair in reversed(pairs) for v in pair]

    def test_metadata_refreshed_after_set_order(self):
        """Satellite: an explicit set_order must refresh every cached
        block's top_level/quantify and re-sort the block list."""
        relnet = RelationalNet(ImprovedEncoding(slotted_ring(2)))
        bdd = relnet.bdd
        before = relnet.partitions(2)
        relations_before = {b.label: b.relation for b in before}
        bdd.set_order(self.reversed_pair_order(relnet))
        after = relnet.partitions(2)
        tops = [block.top_level for block in after]
        assert tops == sorted(tops)
        for block in after:
            assert block.top_level == min(
                bdd.level_of_var(v) for v in block.support)
            levels = [bdd.level_of_var(v) for v in block.quantify]
            assert levels == sorted(levels)
            # Relations themselves are stable handles, never rebuilt.
            assert block.relation is relations_before[block.label]

    def test_images_correct_after_set_order(self, explicit_counts):
        relnet = RelationalNet(ImprovedEncoding(slotted_ring(2)))
        blocks = relnet.partitions(2)
        expected = relnet.image_all(relnet.initial)
        relnet.bdd.set_order(self.reversed_pair_order(relnet))
        blocks = relnet.partitions(2)
        assert relnet.image_partitioned(relnet.initial, blocks) == expected
        result = traverse_relational(relnet, engine="chained",
                                     cluster_size=2)
        assert result.marking_count == explicit_counts["slot2"]

    def test_refresh_fires_for_every_cached_granularity(self):
        relnet = RelationalNet(ImprovedEncoding(figure4_net()))
        relnet.partitions(1)
        relnet.partitions(3)
        relnet.partitions("auto")
        relnet.bdd.set_order(self.reversed_pair_order(relnet))
        for key in (1, 3, "auto"):
            for block in relnet.partitions(key):
                assert block.top_level == min(
                    relnet.bdd.level_of_var(v) for v in block.support)


# ---------------------------------------------------------------------
# Functional-path support ordering
# ---------------------------------------------------------------------

class TestFunctionalClusters:
    def test_support_sorted_transitions_is_permutation(self):
        symnet = SymbolicNet(ImprovedEncoding(philosophers(3)))
        assert sorted(symnet.support_sorted_transitions()) \
            == sorted(symnet.net.transitions)

    def test_transition_clusters_cover_all(self):
        symnet = SymbolicNet(ImprovedEncoding(slotted_ring(2)))
        for cluster_size in (1, 3):
            clusters = symnet.transition_clusters(cluster_size)
            seen = [t for cluster in clusters for t in cluster]
            assert sorted(seen) == sorted(symnet.net.transitions)

    def test_image_cluster_unions_members(self):
        symnet = SymbolicNet(ImprovedEncoding(figure1_net()))
        states = symnet.initial
        cluster = list(symnet.net.transitions)[:3]
        expected = symnet.image(states, cluster[0])
        for transition in cluster[1:]:
            expected = expected | symnet.image(states, transition)
        assert symnet.image_cluster(states, cluster) == expected

    def test_support_chain_order_reaches_fixpoint(self, make_net,
                                                  explicit_counts):
        for name in FAMILIES:
            result = traverse(SymbolicNet(ImprovedEncoding(make_net(name))),
                              strategy="chaining", chain_order="support")
            assert result.marking_count == explicit_counts[name]

    def test_unknown_chain_order_rejected(self):
        symnet = SymbolicNet(ImprovedEncoding(figure4_net()))
        with pytest.raises(ValueError):
            traverse(symnet, strategy="chaining", chain_order="random")
