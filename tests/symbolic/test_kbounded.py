"""Unit tests for the k-bounded (non-safe) symbolic engine."""

import pytest

from repro.petri import Marking, PetriNet, ReachabilityGraph
from repro.petri.generators import figure1_net, figure4_net
from repro.symbolic.kbounded import KBoundedNet, traverse_kbounded


def two_token_cycle():
    """A cycle with two tokens: 2-bounded, never safe."""
    net = PetriNet("two-token")
    net.add_place("a", tokens=2)
    net.add_place("b")
    net.add_place("c")
    net.add_transition("t1", pre=["a"], post=["b"])
    net.add_transition("t2", pre=["b"], post=["c"])
    net.add_transition("t3", pre=["c"], post=["a"])
    return net


def producer_consumer(buffer_bound):
    """Unbounded producer throttled only by the engine's bound."""
    net = PetriNet("prodcons")
    net.add_place("idle", tokens=1)
    net.add_place("buffer")
    net.add_transition("produce", pre=["idle"], post=["idle", "buffer"])
    net.add_transition("consume", pre=["buffer"], post=[])
    return net


class TestConstruction:
    def test_bit_width(self):
        knet = KBoundedNet(two_token_cycle(), bound=2)
        assert knet.bits == 2
        assert len(knet.current_vars) == 3 * 2

    def test_safe_bound_single_bit(self):
        knet = KBoundedNet(figure1_net(), bound=1)
        assert knet.bits == 1
        assert len(knet.current_vars) == 7

    def test_bad_bound(self):
        with pytest.raises(ValueError):
            KBoundedNet(two_token_cycle(), bound=0)

    def test_initial_exceeding_bound_rejected(self):
        with pytest.raises(ValueError):
            KBoundedNet(two_token_cycle(), bound=1)

    def test_fresh_manager_required(self):
        from repro.bdd import BDD
        bdd = BDD(var_names=["stale"])
        with pytest.raises(ValueError):
            KBoundedNet(two_token_cycle(), bound=2, bdd=bdd)


class TestPredicates:
    def test_count_equals_on_initial(self):
        knet = KBoundedNet(two_token_cycle(), bound=2)
        assert not (knet.initial & knet.count_equals("a", 2)).is_zero()
        assert (knet.initial & knet.count_equals("a", 1)).is_zero()

    def test_count_at_least(self):
        knet = KBoundedNet(two_token_cycle(), bound=2)
        assert not (knet.initial & knet.count_at_least("a", 1)).is_zero()
        assert (knet.initial & knet.count_at_least("b", 1)).is_zero()

    def test_count_out_of_range(self):
        knet = KBoundedNet(two_token_cycle(), bound=2)
        with pytest.raises(ValueError):
            knet.count_equals("a", 9)


class TestImage:
    def test_single_step(self):
        knet = KBoundedNet(two_token_cycle(), bound=2)
        successors = knet.image(knet.initial, "t1")
        assert knet.markings_of(successors) == [Marking({"a": 1, "b": 1})]

    def test_disabled_transition(self):
        knet = KBoundedNet(two_token_cycle(), bound=2)
        assert knet.image(knet.initial, "t2").is_zero()

    def test_image_respects_bound(self):
        """The producer cannot exceed the configured buffer bound."""
        knet = KBoundedNet(producer_consumer(3), bound=3)
        result = traverse_kbounded(knet)
        for marking in knet.markings_of(result.reachable):
            assert marking["buffer"] <= 3


class TestTraversal:
    def test_two_token_cycle_counts(self):
        """Token counts over 3 places summing to 2: C(4,2) = 6 markings."""
        knet = KBoundedNet(two_token_cycle(), bound=2)
        result = traverse_kbounded(knet)
        explicit = ReachabilityGraph(two_token_cycle(), require_safe=False)
        assert result.marking_count == len(explicit) == 6

    def test_matches_explicit_markings(self):
        knet = KBoundedNet(two_token_cycle(), bound=2)
        result = traverse_kbounded(knet)
        explicit = ReachabilityGraph(two_token_cycle(), require_safe=False)
        assert set(knet.markings_of(result.reachable)) \
            == set(explicit.markings)

    @pytest.mark.parametrize("factory,expected", [
        (figure1_net, 8), (figure4_net, 22)])
    def test_safe_nets_at_bound_one(self, factory, expected):
        """With k = 1 the engine reproduces the safe engines' counts."""
        result = traverse_kbounded(KBoundedNet(factory(), bound=1))
        assert result.marking_count == expected

    def test_safe_net_at_higher_bound_same_counts(self):
        """A safe net stays safe under a looser bound."""
        result = traverse_kbounded(KBoundedNet(figure1_net(), bound=3))
        assert result.marking_count == 8

    def test_producer_consumer_buffer_levels(self):
        knet = KBoundedNet(producer_consumer(2), bound=2)
        result = traverse_kbounded(knet)
        # idle always 1; buffer in {0, 1, 2}: three markings.
        assert result.marking_count == 3

    def test_statistics(self):
        result = traverse_kbounded(KBoundedNet(two_token_cycle(), bound=2))
        assert result.iterations > 0
        assert result.variable_count == 6
        assert "markings=6" in repr(result)

    def test_max_iterations_guard(self):
        knet = KBoundedNet(two_token_cycle(), bound=2)
        with pytest.raises(RuntimeError):
            traverse_kbounded(knet, max_iterations=1)
