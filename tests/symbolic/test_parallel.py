"""Unit tests for the ``partitioned-mp`` worker pool
(:mod:`repro.symbolic.parallel`): serial degradation through an
injected harness, block pinning, the satellite order-independence fix
for ``image_partitioned`` and the ``workers`` spec field's validation
surface.

The real-process differential matrix (workers=2 vs the serial
partitioned engine vs the explicit oracle on every generator family,
plus the SIGKILL fallback test) lives in ``test_engine_diff.py``.
"""

import queue as std_queue
import random

import pytest

from repro.analysis import AnalysisSpec, SpecError, member_spec
from repro.analysis.checkpoint import spec_fingerprint
from repro.encoding import ImprovedEncoding
from repro.symbolic import (ParallelPartitionedImageEngine,
                            ParallelZddEngine, RelationalNet,
                            SweepHarness, ZddRelationalNet,
                            traverse_relational, traverse_zdd)
from repro.symbolic.parallel import (STALLED_QUEUE_POLLS, ParallelSweep,
                                     _WorkerSlot, resolve_workers)


class _NoWorkersHarness(SweepHarness):
    """Pins the serial degradation: no process is ever spawned."""

    def available(self):
        return False


# ---------------------------------------------------------------------------
# Serial degradation


def test_bdd_serial_fallback_matches_oracle(make_net, explicit_counts):
    relnet = RelationalNet(ImprovedEncoding(make_net("phil3")))
    engine = ParallelPartitionedImageEngine(
        relnet, cluster_size="auto", workers=2,
        harness=_NoWorkersHarness())
    try:
        result = traverse_relational(relnet, engine=engine)
    finally:
        engine.close()
    assert result.marking_count == explicit_counts["phil3"]
    assert result.engine == "relational/partitioned-mp"
    stats = engine.parallel_stats()
    assert stats["mode"] == "serial-fallback"
    assert stats["crashes"] == []
    assert stats["pin_ships"] == 0


def test_zdd_serial_fallback_matches_oracle(make_net, explicit_counts):
    relnet = ZddRelationalNet(make_net("slot2"))
    engine = ParallelZddEngine(relnet, cluster_size="auto", workers=2,
                               harness=_NoWorkersHarness())
    try:
        result = traverse_zdd(relnet, engine=engine)
    finally:
        engine.close()
    assert result.marking_count == explicit_counts["slot2"]
    assert engine.parallel_stats()["mode"] == "serial-fallback"


def test_close_is_idempotent(make_net):
    relnet = RelationalNet(ImprovedEncoding(make_net("figure1")))
    engine = ParallelPartitionedImageEngine(
        relnet, workers=1, harness=_NoWorkersHarness())
    engine.close()
    engine.close()


# ---------------------------------------------------------------------------
# Satellite: image_partitioned ordering


def test_image_partitioned_is_order_independent(make_net):
    """Shuffling the block list never changes the computed image."""
    relnet = RelationalNet(ImprovedEncoding(make_net("phil3")))
    blocks = relnet.partitions("auto")
    assert len(blocks) > 1
    states = relnet.initial
    baseline = relnet.image_partitioned(states, blocks)
    rng = random.Random(7)
    for _ in range(5):
        shuffled = list(blocks)
        rng.shuffle(shuffled)
        assert relnet.image_partitioned(states, shuffled) == baseline


def test_image_partitioned_unions_smallest_first(make_net):
    """The serial sweep applies blocks by ascending relation size, so
    intermediate union BDDs stay small regardless of declaration
    order."""
    relnet = RelationalNet(ImprovedEncoding(make_net("slot2")))
    blocks = relnet.partitions(1)
    visited = []
    original = relnet.image_partition

    def spy(states, block):
        visited.append(block)
        return original(states, block)

    relnet.image_partition = spy
    try:
        relnet.image_partitioned(relnet.initial, list(reversed(blocks)))
    finally:
        del relnet.image_partition
    sizes = [relnet.block_size(block) for block in visited]
    assert sizes == sorted(sizes)
    assert len(visited) == len(blocks)


def test_zdd_block_size_counts_member_relations(make_net):
    relnet = ZddRelationalNet(make_net("slot2"))
    for block in relnet.partitions("auto"):
        assert relnet.block_size(block) == sum(
            relnet.zdd.size(member.relation) for member in block.members)


# ---------------------------------------------------------------------------
# Wedged result queue (fakes)


class _FakeProcess:
    def __init__(self):
        self.killed = False

    def is_alive(self):
        return not self.killed

    def kill(self):
        self.killed = True


class _EmptyQueue:
    """A result queue whose reads always time out — what the parent
    sees when a killed writer's feeder thread died holding the queue's
    write lock."""

    def get(self, timeout=None):
        raise std_queue.Empty

    def put(self, item):
        pass


class _RepliesAfterQueue:
    """Times out ``empties`` times, then yields the given replies."""

    def __init__(self, empties, replies):
        self.empties = empties
        self.replies = list(replies)

    def get(self, timeout=None):
        if self.empties > 0:
            self.empties -= 1
            raise std_queue.Empty
        if self.replies:
            return self.replies.pop(0)
        raise std_queue.Empty


class _RebuildHarness(SweepHarness):
    def __init__(self):
        super().__init__()
        self.queues_created = 0

    def create_queue(self):
        self.queues_created += 1
        return _EmptyQueue()

    def poll_interval(self):
        return 0.0


def test_wedged_queue_is_rebuilt_and_silent_workers_crashed(make_net):
    """A step that lost one worker at dispatch (``suspect``) and then
    hears nothing from the survivors rebuilds the result queue instead
    of polling forever: the survivors are killed (their feeders may be
    blocked on the dead writer's lock) and take the normal crash path."""
    relnet = RelationalNet(ImprovedEncoding(make_net("phil3")))
    sweep = ParallelSweep(relnet, workers=2, harness=_RebuildHarness())
    sweep._result_queue = _EmptyQueue()
    slot = _WorkerSlot(0)
    slot.process = _FakeProcess()
    sweep.slots = [slot]
    replies, crashed = sweep._collect(1, {0: slot}, suspect=True)
    assert replies == {}
    assert crashed == [0]
    assert slot.process.killed
    assert sweep.queue_resets == 1
    assert sweep.harness.queues_created == 1
    assert sweep.stats()["queue_resets"] == 1


def test_silent_workers_without_any_crash_are_left_alone(make_net):
    """With no crash on record a long silence is just a slow step: the
    pool keeps waiting and the late reply is collected normally."""
    relnet = RelationalNet(ImprovedEncoding(make_net("phil3")))
    sweep = ParallelSweep(relnet, workers=2, harness=_RebuildHarness())
    sweep._result_queue = _RepliesAfterQueue(
        STALLED_QUEUE_POLLS + 50,
        [("image", 0, 1, "irrelevant", {"blocks": 1})])
    slot = _WorkerSlot(0)
    slot.process = _FakeProcess()
    sweep.slots = [slot]
    replies, crashed = sweep._collect(1, {0: slot})
    assert replies == {0: "irrelevant"}
    assert crashed == []
    assert not slot.process.killed
    assert sweep.queue_resets == 0


# ---------------------------------------------------------------------------
# Pinning (real processes)


def _workers_available():
    import multiprocessing
    if multiprocessing.current_process().daemon:
        return False
    try:
        probe = multiprocessing.get_context().Queue()
        probe.close()
        probe.join_thread()
    except Exception:
        return False
    return True


def test_blocks_are_pinned_once_without_reordering(make_net,
                                                   explicit_counts):
    """With a static variable order the relations ship exactly once:
    one pin per worker, however many fixpoint steps run."""
    if not _workers_available():
        pytest.skip("multiprocessing unavailable in this environment")
    relnet = RelationalNet(ImprovedEncoding(make_net("phil3")))
    engine = ParallelPartitionedImageEngine(relnet, cluster_size="auto",
                                            workers=2)
    try:
        result = traverse_relational(relnet, engine=engine)
        stats = engine.parallel_stats()
    finally:
        engine.close()
    assert result.marking_count == explicit_counts["phil3"]
    assert stats["mode"] == "process"
    assert stats["steps"] > 1
    assert stats["pin_ships"] == stats["workers"]
    assert stats["peak_live_nodes"] > 0
    assert all(worker["steps"] == stats["steps"]
               for worker in stats["per_worker"])


# ---------------------------------------------------------------------------
# resolve_workers / spec surface


def test_resolve_workers():
    assert resolve_workers(3) == 3
    assert resolve_workers(1) == 1
    assert resolve_workers("auto") >= 1
    assert resolve_workers(None) >= 1


def test_spec_workers_requires_partitioned_mp():
    for spec_kwargs in (
            dict(form="relational", engine="chained"),
            dict(),                       # functional BDD default
            dict(backend="zdd"),          # zdd default engine
            dict(k_bound=2)):
        with pytest.raises(SpecError, match="workers"):
            AnalysisSpec(workers=2, **spec_kwargs)


def test_spec_workers_value_validation():
    for bad in (0, -1, 1.5, "many", True):
        with pytest.raises(SpecError, match="workers"):
            AnalysisSpec(form="relational", engine="partitioned-mp",
                         workers=bad)
    spec = AnalysisSpec(form="relational", engine="partitioned-mp",
                        workers=2)
    assert spec.resolved_workers == 2
    assert AnalysisSpec(form="relational",
                        engine="partitioned-mp").resolved_workers == "auto"


def test_spec_workers_engine_ids():
    assert AnalysisSpec(form="relational",
                        engine="partitioned-mp").engine_id \
        == "relational/partitioned-mp"
    assert AnalysisSpec(backend="zdd", form="relational",
                        engine="partitioned-mp").engine_id \
        == "zdd/partitioned-mp"


def test_spec_workers_is_nonsemantic_for_checkpoints():
    """Any worker count computes the same trajectory, so the checkpoint
    fingerprint must not depend on it (a resume may change workers)."""
    base = AnalysisSpec(form="relational", engine="partitioned-mp")
    assert spec_fingerprint(base) \
        == spec_fingerprint(base.replace(workers=4))


def test_spec_workers_portfolio_warns_without_mp_member():
    spec = AnalysisSpec(backend="portfolio", workers=2)
    assert any(w.option == "workers" for w in spec.warnings())
    with_member = AnalysisSpec(
        backend="portfolio", workers=2,
        portfolio_members=("bdd-partitioned-mp", "zdd-chained"))
    assert not any(w.option == "workers"
                   for w in with_member.warnings())


def test_portfolio_member_spec_threads_workers():
    parent = AnalysisSpec(
        backend="portfolio", workers=3,
        portfolio_members=("bdd-partitioned-mp", "zdd-chained"))
    member = member_spec(parent, "bdd-partitioned-mp")
    assert member.resolved_engine == "partitioned-mp"
    assert member.workers == 3
