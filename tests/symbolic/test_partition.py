"""Tests for the shared relational layer (repro.symbolic.partition).

Covers the behaviours the unified layer added on top of the old
per-manager copies: reorder-aware reclustering of ``"auto"`` partitions,
diff-based working-set narrowing of the chained sweep, the size-gated
once-per-sweep Coudert-Madre restriction, and the fact that one engine
class hierarchy drives both managers.
"""

import pytest

from repro.encoding import ImprovedEncoding
from repro.petri.generators import figure4_net, philosophers, slotted_ring
from repro.symbolic import (ChainedImageEngine, ChainedZddEngine,
                            ImageEngine, RelationalNet, ZddNet,
                            ZddRelationalNet, ZddImageEngine,
                            make_image_engine, make_zdd_image_engine,
                            traverse_relational, traverse_zdd)
from repro.symbolic.partition import PartitionedNet
from repro.symbolic.relational import SIMPLIFY_MIN_FRONTIER_NODES


class TestUnifiedLayer:
    def test_both_nets_share_the_partition_layer(self):
        assert issubclass(RelationalNet, PartitionedNet)
        assert issubclass(ZddRelationalNet, PartitionedNet)

    def test_zdd_engines_are_the_generic_engines(self):
        """The relational ZDD engines are the same classes that drive
        the BDD net — only the alias surface differs."""
        relnet = ZddRelationalNet(figure4_net())
        engine = make_zdd_image_engine(relnet, "chained", 2)
        assert isinstance(engine, ChainedImageEngine)
        assert isinstance(engine, ZddImageEngine)
        assert engine.zddnet is engine.relnet is relnet
        assert engine.zdd is relnet.zdd

    def test_generic_factory_serves_the_zdd_net_too(self):
        """make_image_engine is manager-agnostic: handing it a ZDD
        relational net yields a working chained engine."""
        relnet = ZddRelationalNet(slotted_ring(2))
        engine = make_image_engine(relnet, "chained", cluster_size=2)
        assert isinstance(engine, ImageEngine)
        result = traverse_zdd(relnet, engine=engine)
        assert result.marking_count == 40


class TestChainedNarrowing:
    def test_narrowed_sweep_matches_full_sweep_closure(self):
        """The diff-narrowed chained sweep reaches the same fixpoint
        (trajectory equivalence modulo already-reached states)."""
        for make, net_cls in ((lambda: RelationalNet(
                ImprovedEncoding(slotted_ring(3))), "bdd"),
                (lambda: ZddRelationalNet(slotted_ring(3)), "zdd")):
            relnet = make()
            blocks = relnet.partitions(2)
            reached = relnet.initial
            frontier = relnet.initial
            plain = relnet.image_chained(frontier, blocks)
            narrowed = relnet.image_chained(frontier, blocks,
                                            reached=reached)
            # First step: nothing expanded yet, identical sweeps.
            assert plain == narrowed, net_cls

    def test_narrowing_skips_expanded_states(self):
        """Per-block working sets must exclude states expanded in
        earlier iterations: successors of the already-expanded states
        may be dropped from the sweep result (they are in reached)."""
        relnet = ZddRelationalNet(slotted_ring(2))
        engine = make_zdd_image_engine(relnet, "chained", 1)
        reached = frontier = relnet.initial
        seen_work = []
        original = relnet.image_partition

        def spy(states, block):
            seen_work.append(relnet.zdd.count(states))
            return original(states, block)

        relnet.image_partition = spy
        try:
            reached, frontier = engine.advance(reached, frontier)
            first_counts = list(seen_work)
            seen_work.clear()
            reached, frontier = engine.advance(reached, frontier)
        finally:
            relnet.image_partition = original
        # Second iteration blocks never see the full reached family.
        full = relnet.zdd.count(reached)
        assert seen_work
        assert all(count < full for count in seen_work)
        assert first_counts  # sanity: the spy actually measured

    @pytest.mark.parametrize("engine", ["monolithic", "partitioned",
                                        "chained"])
    def test_fixpoints_agree_across_narrowing_paths(self, engine,
                                                    make_net,
                                                    explicit_counts):
        for name in ("figure4", "slot2", "phil3"):
            bdd_result = traverse_relational(
                RelationalNet(ImprovedEncoding(make_net(name))),
                engine=engine, cluster_size=2, simplify_frontier=True)
            zdd_result = traverse_zdd(
                ZddRelationalNet(make_net(name)), engine=engine,
                cluster_size=2)
            assert bdd_result.marking_count == explicit_counts[name]
            assert zdd_result.marking_count == explicit_counts[name]


class TestSimplifyGate:
    def test_small_frontiers_pass_through_unrestricted(self):
        relnet = RelationalNet(ImprovedEncoding(slotted_ring(2)))
        frontier = relnet.initial
        reached = relnet.initial
        assert frontier.size() < SIMPLIFY_MIN_FRONTIER_NODES
        assert relnet.narrow_frontier(frontier, reached) is frontier

    def test_zdd_narrow_frontier_is_identity(self):
        relnet = ZddRelationalNet(slotted_ring(2))
        assert relnet.narrow_frontier(relnet.initial, relnet.initial) \
            == relnet.initial

    def test_restriction_applies_above_the_gate(self, monkeypatch):
        import repro.symbolic.relational as relational
        relnet = RelationalNet(ImprovedEncoding(slotted_ring(2)))
        reached = traverse_relational(relnet, engine="chained").reachable
        frontier = reached
        monkeypatch.setattr(relational, "SIMPLIFY_MIN_FRONTIER_NODES", 1)
        narrowed = relnet.narrow_frontier(frontier, reached)
        care = frontier | ~reached
        assert (narrowed & care) == (frontier & care)

    def test_gated_simplify_reaches_fixpoint(self, make_net,
                                             explicit_counts):
        for engine in ("monolithic", "partitioned", "chained"):
            relnet = RelationalNet(ImprovedEncoding(make_net("slot2")))
            result = traverse_relational(relnet, engine=engine,
                                         simplify_frontier=True)
            assert result.marking_count == explicit_counts["slot2"]


class TestReorderAwareReclustering:
    def reversed_pair_order(self, relnet):
        pairs = [(name, name + "'") for name in relnet.current]
        return [v for pair in reversed(pairs) for v in pair]

    def test_auto_blocks_recluster_on_set_order(self):
        """Satellite acceptance: the reorder hook re-runs the greedy
        clustering and rebuilds only blocks whose membership changed."""
        relnet = RelationalNet(ImprovedEncoding(philosophers(3)))
        before = relnet.partitions("auto")
        assert relnet.recluster_count == 0
        relnet.bdd.set_order(self.reversed_pair_order(relnet))
        after = relnet.partitions("auto")
        # Membership follows the new support-sorted order.
        seen = sorted(t for block in after for t in block.transitions)
        assert seen == sorted(relnet.net.transitions)
        tops = [block.top_level for block in after]
        assert tops == sorted(tops)
        if {b.transitions for b in after} != {b.transitions
                                              for b in before}:
            assert relnet.recluster_count > 0

    def test_unchanged_groups_keep_their_blocks(self):
        """Rebuilds are scoped to membership changes: a reorder that
        keeps the grouping intact reuses every existing relation."""
        relnet = RelationalNet(ImprovedEncoding(figure4_net()))
        before = {b.transitions: b.relation
                  for b in relnet.partitions("auto")}
        relnet.refresh_partitions()  # no order change at all
        for block in relnet.partitions("auto"):
            assert block.relation is before[block.transitions]
        assert relnet.recluster_count == 0

    def test_zdd_auto_blocks_recluster_too(self):
        relnet = ZddRelationalNet(philosophers(3))
        relnet.partitions("auto")
        order = list(range(relnet.zdd.num_vars))
        # Rotate whole current/next pairs to change support-top levels.
        pairs = [order[i:i + 2] for i in range(0, len(order), 2)]
        rotated = [v for pair in pairs[::-1] for v in pair]
        relnet.zdd.set_order(rotated)
        after = relnet.partitions("auto")
        seen = sorted(t for block in after for t in block.transitions)
        assert seen == sorted(relnet.net.transitions)
        tops = [block.top_level for block in after]
        assert tops == sorted(tops)

    def test_traversal_correct_with_reclustering(self, make_net,
                                                 explicit_counts):
        relnet = RelationalNet(ImprovedEncoding(make_net("phil3")),
                               auto_reorder=True, reorder_threshold=100)
        result = traverse_relational(relnet, engine="chained",
                                     cluster_size="auto")
        assert result.reorder_count > 0
        assert result.marking_count == explicit_counts["phil3"]


class TestZddReorderTraversal:
    @pytest.mark.parametrize("engine", ["monolithic", "partitioned",
                                        "chained"])
    def test_relational_engines_with_reorder(self, engine, make_net,
                                             explicit_counts):
        """ZDD relational traversal with pair-grouped sifting enabled
        still pins the explicit counts."""
        for name in ("figure4", "slot2", "phil3"):
            relnet = ZddRelationalNet(make_net(name), auto_reorder=True,
                                      reorder_threshold=50)
            result = traverse_zdd(relnet, engine=engine,
                                  cluster_size="auto")
            assert result.marking_count == explicit_counts[name], \
                (name, engine)
            assert result.reorder_count > 0, (name, engine)
            for place in relnet.current:
                cur = relnet.zdd.level_of_var(place)
                nxt = relnet.zdd.level_of_var(place + "'")
                assert nxt == cur + 1

    def test_classic_engine_with_reorder(self, make_net, explicit_counts):
        zddnet = ZddNet(make_net("muller3"), auto_reorder=True,
                        reorder_threshold=20)
        result = traverse_zdd(zddnet)
        assert result.marking_count == explicit_counts["muller3"]
        assert result.reorder_count > 0

    def test_chained_engine_is_chained_zdd_engine(self):
        relnet = ZddRelationalNet(figure4_net())
        engine = make_zdd_image_engine(relnet, "chained")
        assert isinstance(engine, ChainedZddEngine)
        assert engine.name == "chained"
