"""Unit tests for traversal strategies and frontier simplification."""

import pytest

from repro.encoding import ImprovedEncoding, SparseEncoding
from repro.petri import ReachabilityGraph
from repro.petri.generators import figure4_net, muller, slotted_ring
from repro.symbolic import SymbolicNet, traverse

FAMILIES = [
    ("figure4", figure4_net, 22),
    ("muller5", lambda: muller(5), 420),
    ("slot3", lambda: slotted_ring(3), 224),
]


@pytest.mark.parametrize("name,factory,expected", FAMILIES,
                         ids=[f[0] for f in FAMILIES])
@pytest.mark.parametrize("strategy", ["bfs", "chaining"])
@pytest.mark.parametrize("simplify", [False, True])
def test_all_strategies_reach_same_fixpoint(name, factory, expected,
                                            strategy, simplify):
    symnet = SymbolicNet(ImprovedEncoding(factory()))
    result = traverse(symnet, use_toggle=True, strategy=strategy,
                      simplify_frontier=simplify)
    assert result.marking_count == expected


def test_chaining_needs_fewer_iterations():
    net = muller(6)
    bfs = traverse(SymbolicNet(ImprovedEncoding(net)), strategy="bfs")
    chain = traverse(SymbolicNet(ImprovedEncoding(net)),
                     strategy="chaining")
    assert chain.iterations < bfs.iterations
    assert chain.marking_count == bfs.marking_count


def test_chaining_respects_transition_order_semantics():
    """Chaining explores more per iteration but never invents states."""
    net = figure4_net()
    explicit = {m.support for m in ReachabilityGraph(net).markings}
    symnet = SymbolicNet(SparseEncoding(net))
    result = traverse(symnet, strategy="chaining")
    assert {m.support for m in symnet.markings_of(result.reachable)} \
        == explicit


def test_unknown_strategy_rejected():
    symnet = SymbolicNet(SparseEncoding(figure4_net()))
    with pytest.raises(ValueError):
        traverse(symnet, strategy="dfs")


def test_simplified_frontier_with_reordering():
    net = slotted_ring(3)
    symnet = SymbolicNet(ImprovedEncoding(net), auto_reorder=True,
                         reorder_threshold=500)
    result = traverse(symnet, use_toggle=True, strategy="chaining",
                      simplify_frontier=True)
    assert result.marking_count == 224
