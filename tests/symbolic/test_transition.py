"""Unit tests for SymbolicNet image/preimage operators."""

import pytest

from repro.encoding import (DenseEncoding, ImprovedEncoding, SparseEncoding)
from repro.petri import Marking
from repro.petri.generators import figure1_net, figure4_net
from repro.symbolic import SymbolicNet

ALL_SCHEMES = [SparseEncoding, DenseEncoding, ImprovedEncoding]


@pytest.fixture(params=ALL_SCHEMES)
def symnet(request):
    return SymbolicNet(request.param(figure1_net()))


class TestConstruction:
    def test_fresh_manager_required(self):
        from repro.bdd import BDD
        bdd = BDD(var_names=["stale"])
        with pytest.raises(ValueError):
            SymbolicNet(SparseEncoding(figure1_net()), bdd=bdd)

    def test_variables_declared_in_order(self, symnet):
        assert tuple(symnet.bdd.order()) == symnet.encoding.variables

    def test_initial_is_single_minterm(self, symnet):
        assert symnet.count_markings(symnet.initial) == 1
        markings = symnet.markings_of(symnet.initial)
        assert markings == [Marking(["p1"])]


class TestImage:
    def test_image_of_initial(self, symnet):
        for trans, expected in [("t1", Marking(["p2", "p3"])),
                                ("t2", Marking(["p4", "p5"]))]:
            successors = symnet.image(symnet.initial, trans)
            assert symnet.markings_of(successors) == [expected]

    def test_image_of_disabled_transition_is_empty(self, symnet):
        assert symnet.image(symnet.initial, "t7").is_zero()

    def test_image_all_is_union(self, symnet):
        union = symnet.image_all(symnet.initial)
        expected = (symnet.image(symnet.initial, "t1")
                    | symnet.image(symnet.initial, "t2"))
        assert union == expected

    def test_image_toggle_agrees(self, symnet):
        for trans in symnet.net.transitions:
            assert (symnet.image(symnet.initial, trans)
                    == symnet.image_toggle(symnet.initial, trans))

    def test_image_of_set(self, symnet):
        both = (symnet.marking_function(Marking(["p2", "p3"]))
                | symnet.marking_function(Marking(["p4", "p5"])))
        successors = symnet.image(both, "t3") | symnet.image(both, "t5")
        supports = {m.support for m in symnet.markings_of(successors)}
        assert supports == {frozenset({"p6", "p3"}),
                            frozenset({"p6", "p5"})}


class TestPreimage:
    """Preimages follow the Eq. 2 semantics exactly, which maps unsafe
    assignments too; restricting to the reachable set gives the
    token-game predecessors."""

    @pytest.fixture
    def reachable(self, symnet):
        from repro.symbolic import traverse
        return traverse(symnet).reachable

    def test_preimage_inverts_image(self, symnet, reachable):
        target = symnet.marking_function(Marking(["p2", "p3"]))
        pre = symnet.preimage(target, "t1") & reachable
        assert symnet.markings_of(pre) == [Marking(["p1"])]

    def test_preimage_of_unreachable_target(self, symnet, reachable):
        target = symnet.marking_function(Marking(["p6", "p7"]))
        assert (symnet.preimage(target, "t1") & reachable).is_zero()

    def test_preimage_all(self, symnet, reachable):
        target = symnet.marking_function(Marking(["p6", "p7"]))
        pre = symnet.preimage_all(target) & reachable
        supports = {m.support for m in symnet.markings_of(pre)}
        assert supports == {frozenset({"p6", "p3"}),
                            frozenset({"p2", "p7"}),
                            frozenset({"p6", "p5"}),
                            frozenset({"p4", "p7"})}

    def test_preimage_is_exact_inverse_of_image(self, symnet):
        """Even off the reachable set: S & pre(img(S)) == S when S maps
        somewhere."""
        states = symnet.initial
        image = symnet.image(states, "t1")
        pre = symnet.preimage(image, "t1")
        assert (states & pre) == states

    def test_image_preimage_galois(self, symnet):
        """img(S) & T nonempty iff S & pre(T) nonempty, per transition."""
        states = symnet.initial
        for trans in symnet.net.transitions:
            forward = symnet.image(states, trans)
            for marking in [Marking(["p2", "p3"]), Marking(["p4", "p5"])]:
                target = symnet.marking_function(marking)
                lhs = not (forward & target).is_zero()
                rhs = not (states & symnet.preimage(target, trans)).is_zero()
                assert lhs == rhs


class TestDeadlockCondition:
    def test_figure1_has_no_deadlock_state(self, symnet):
        # Every reachable marking enables something; the deadlock condition
        # itself is not empty over the whole boolean space, though.
        from repro.symbolic import traverse
        reached = traverse(symnet).reachable
        assert (reached & symnet.deadlock_condition()).is_zero()

    def test_figure4_deadlock_detected(self):
        symnet = SymbolicNet(ImprovedEncoding(figure4_net()))
        from repro.symbolic import traverse
        reached = traverse(symnet).reachable
        dead = reached & symnet.deadlock_condition()
        assert symnet.count_markings(dead) == 2


class TestEnablingFunctions:
    def test_enabling_requires_all_preset_places(self, symnet):
        assignment = symnet.encoding.marking_to_assignment(
            Marking(["p6", "p7"]))
        assert symnet.enabling["t7"](assignment)
        assignment2 = symnet.encoding.marking_to_assignment(
            Marking(["p6", "p3"]))
        assert not symnet.enabling["t7"](assignment2)
