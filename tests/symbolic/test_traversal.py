"""Cross-validation of every symbolic engine against explicit enumeration."""

import pytest

from repro.encoding import DenseEncoding, ImprovedEncoding, SparseEncoding
from repro.petri import ReachabilityGraph
from repro.petri.generators import figure1_net, figure4_net, slotted_ring
from repro.symbolic import (RelationalNet, SymbolicNet, traverse,
                            traverse_relational)

# Net instances come from the shared fixtures in tests/conftest.py
# (make_net builds them, explicit_counts is the enumeration oracle).
FAMILIES = ["figure1", "figure4", "muller3", "slot2", "phil3", "dme2",
            "jjreg-a2"]
SCHEMES = [SparseEncoding, DenseEncoding, ImprovedEncoding]


@pytest.mark.parametrize("name", FAMILIES)
@pytest.mark.parametrize("scheme", SCHEMES,
                         ids=[s.__name__ for s in SCHEMES])
def test_marking_count_matches_explicit(name, scheme, make_net,
                                        explicit_counts):
    result = traverse(SymbolicNet(scheme(make_net(name))))
    assert result.marking_count == explicit_counts[name]


@pytest.mark.parametrize("scheme", SCHEMES,
                         ids=[s.__name__ for s in SCHEMES])
def test_toggle_firing_agrees(scheme, make_net, explicit_counts):
    """The Section 5.2 toggle path reaches the same fixpoint."""
    for name in FAMILIES[:5]:
        result = traverse(SymbolicNet(scheme(make_net(name))),
                          use_toggle=True)
        assert result.marking_count == explicit_counts[name]


@pytest.mark.parametrize("scheme", SCHEMES,
                         ids=[s.__name__ for s in SCHEMES])
def test_relational_engine_agrees(scheme, explicit_counts):
    """The Eq. 3 relational path reaches the same fixpoint."""
    for name, factory in [("figure1", figure1_net),
                          ("figure4", figure4_net),
                          ("slot2", lambda: slotted_ring(2))]:
        result = traverse_relational(RelationalNet(scheme(factory())))
        assert result.marking_count == explicit_counts[name]


def test_monolithic_relation_agrees(explicit_counts):
    relnet = RelationalNet(ImprovedEncoding(figure4_net()))
    result = traverse_relational(relnet, monolithic=True)
    assert result.marking_count == explicit_counts["figure4"]


def test_reachable_sets_decode_identically():
    """BDD reachable set decodes to exactly the explicit marking set."""
    net = figure4_net()
    explicit = {m.support for m in ReachabilityGraph(net).markings}
    for scheme in SCHEMES:
        symnet = SymbolicNet(scheme(net))
        reached = traverse(symnet).reachable
        symbolic = {m.support for m in symnet.markings_of(reached)}
        assert symbolic == explicit


def test_traversal_statistics_sane():
    symnet = SymbolicNet(ImprovedEncoding(figure4_net()))
    result = traverse(symnet)
    assert result.iterations > 0
    assert result.variable_count == 8
    assert result.final_bdd_nodes >= 3
    assert result.peak_live_nodes >= result.final_bdd_nodes
    assert result.seconds >= 0
    assert "markings=22" in repr(result)


def test_on_iteration_observer():
    steps = []
    symnet = SymbolicNet(SparseEncoding(figure1_net()))
    traverse(symnet, on_iteration=lambda i, r: steps.append(i))
    assert steps == list(range(1, len(steps) + 1))
    assert steps  # at least one frontier step


def test_max_iterations_guard():
    symnet = SymbolicNet(SparseEncoding(figure4_net()))
    with pytest.raises(RuntimeError):
        traverse(symnet, max_iterations=1)


def test_traversal_with_dynamic_reordering():
    """Auto-reordering during traversal must not change the result."""
    net = slotted_ring(3)
    expected = len(ReachabilityGraph(net))
    symnet = SymbolicNet(ImprovedEncoding(net), auto_reorder=True,
                         reorder_threshold=500)
    result = traverse(symnet, use_toggle=True)
    assert result.marking_count == expected
    assert result.reorder_count > 0


def test_dense_uses_fewer_variables_everywhere(make_net):
    for name in FAMILIES:
        net = make_net(name)
        sparse = SparseEncoding(net)
        improved = ImprovedEncoding(net)
        assert improved.num_variables < sparse.num_variables, name


def test_limit_error_carries_partial_state():
    """Satellite: the overrun raises TraversalLimitError (a
    RuntimeError subclass, so old except-clauses still catch it) whose
    partial reached set is a genuine under-approximation."""
    from repro.symbolic import TraversalLimitError
    net = figure4_net()
    symnet = SymbolicNet(SparseEncoding(net))
    with pytest.raises(TraversalLimitError) as excinfo:
        traverse(symnet, max_iterations=1)
    exc = excinfo.value
    assert isinstance(exc, RuntimeError)
    assert exc.iterations == 1
    assert exc.reached is not None
    partial = exc.reached.satcount(symnet.encoding.num_variables)
    total = traverse(symnet).reachable.satcount(
        symnet.encoding.num_variables)
    assert 0 < partial < total


def test_limit_error_from_relational_and_zdd_and_kbounded():
    from repro.symbolic import (KBoundedNet, RelationalNet,
                                TraversalLimitError, ZddNet,
                                traverse_kbounded, traverse_relational,
                                traverse_zdd)
    net = figure4_net()
    with pytest.raises(TraversalLimitError) as rel:
        traverse_relational(RelationalNet(SparseEncoding(net)),
                            max_iterations=1)
    assert rel.value.reached is not None
    with pytest.raises(TraversalLimitError) as zdd:
        traverse_zdd(ZddNet(net), max_iterations=1)
    assert zdd.value.reached is not None
    with pytest.raises(TraversalLimitError) as kb:
        traverse_kbounded(KBoundedNet(net, 1), max_iterations=1)
    assert kb.value.reached is not None
