"""Unit tests for the sparse-ZDD baseline engine (Table 4)."""

import pytest

from repro.petri import Marking, ReachabilityGraph
from repro.petri.generators import (figure1_net, figure4_net, muller,
                                    slotted_ring)
from repro.symbolic import ZddNet, traverse_zdd


class TestZddNet:
    def test_fresh_manager_required(self):
        from repro.bdd import ZDD
        zdd = ZDD(var_names=["stale"])
        with pytest.raises(ValueError):
            ZddNet(figure1_net(), zdd=zdd)

    def test_initial_family(self):
        zddnet = ZddNet(figure1_net())
        assert zddnet.markings_of(zddnet.initial) == [Marking(["p1"])]

    def test_image_single_transition(self):
        zddnet = ZddNet(figure1_net())
        successors = zddnet.image(zddnet.initial, "t1")
        assert zddnet.markings_of(successors) == [Marking(["p2", "p3"])]

    def test_image_disabled_is_empty(self):
        zddnet = ZddNet(figure1_net())
        assert zddnet.image(zddnet.initial, "t7") == zddnet.zdd.empty()

    def test_image_with_self_loops(self):
        """Read arcs must survive firing (muller uses them heavily)."""
        net = muller(2)
        zddnet = ZddNet(net)
        rg = ReachabilityGraph(net)
        for trans, successor in rg.successors(rg.initial):
            image = zddnet.image(zddnet.initial, trans)
            assert zddnet.markings_of(image) == [successor]

    def test_image_all_matches_explicit_successors(self):
        net = figure1_net()
        zddnet = ZddNet(net)
        rg = ReachabilityGraph(net)
        successors = zddnet.image_all(zddnet.initial)
        expected = {m.support for _, m in rg.successors(rg.initial)}
        assert {m.support for m in zddnet.markings_of(successors)} \
            == expected


class TestTraversal:
    @pytest.mark.parametrize("factory,expected", [
        (figure1_net, 8),
        (figure4_net, 22),
        (lambda: muller(3), 30),
        (lambda: slotted_ring(2), 40),
    ])
    def test_counts_match_explicit(self, factory, expected):
        result = traverse_zdd(ZddNet(factory()))
        assert result.marking_count == expected

    def test_reachable_family_decodes_exactly(self):
        net = figure4_net()
        zddnet = ZddNet(net)
        result = traverse_zdd(zddnet)
        explicit = {m.support for m in ReachabilityGraph(net).markings}
        symbolic = {m.support
                    for m in zddnet.markings_of(result.reachable)}
        assert symbolic == explicit

    def test_statistics(self):
        result = traverse_zdd(ZddNet(figure1_net()))
        assert result.variable_count == 7
        assert result.final_zdd_nodes > 2
        assert result.iterations > 0
        assert "markings=8" in repr(result)

    def test_zdd_smaller_than_place_count_blowup(self):
        """ZDD nodes stay near-linear for these structured families —
        the Yoneda effect that motivates Table 4's baseline."""
        small = traverse_zdd(ZddNet(slotted_ring(2))).final_zdd_nodes
        large = traverse_zdd(ZddNet(slotted_ring(4))).final_zdd_nodes
        assert large < small * 8  # mild growth, not explosion
