"""Unit tests for the sparse-ZDD engines (Table 4 baseline + relational).

Net instances come from the shared fixtures in ``tests/conftest.py``;
the cross-engine set-identity matrix lives in ``test_engine_diff.py``.
"""

import pytest

from repro.petri import Marking, ReachabilityGraph
from repro.petri.generators import figure1_net, figure4_net, muller
from repro.symbolic import (ZDD_IMAGE_ENGINES, ZddNet, ZddRelationalNet,
                            make_zdd_image_engine, traverse_zdd)


class TestZddNet:
    def test_fresh_manager_required(self):
        from repro.bdd import ZDD
        zdd = ZDD(var_names=["stale"])
        with pytest.raises(ValueError):
            ZddNet(figure1_net(), zdd=zdd)

    def test_initial_family(self):
        zddnet = ZddNet(figure1_net())
        assert zddnet.markings_of(zddnet.initial) == [Marking(["p1"])]

    def test_image_single_transition(self):
        zddnet = ZddNet(figure1_net())
        successors = zddnet.image(zddnet.initial, "t1")
        assert zddnet.markings_of(successors) == [Marking(["p2", "p3"])]

    def test_image_disabled_is_empty(self):
        zddnet = ZddNet(figure1_net())
        assert zddnet.image(zddnet.initial, "t7") == zddnet.zdd.empty()

    def test_image_with_self_loops(self, make_net):
        """Read arcs must survive firing (muller uses them heavily)."""
        net = make_net("muller3")
        zddnet = ZddNet(net)
        rg = ReachabilityGraph(net)
        for trans, successor in rg.successors(rg.initial):
            image = zddnet.image(zddnet.initial, trans)
            assert zddnet.markings_of(image) == [successor]

    def test_image_all_matches_explicit_successors(self):
        net = figure1_net()
        zddnet = ZddNet(net)
        rg = ReachabilityGraph(net)
        successors = zddnet.image_all(zddnet.initial)
        expected = {m.support for _, m in rg.successors(rg.initial)}
        assert {m.support for m in zddnet.markings_of(successors)} \
            == expected


class TestZddRelationalNet:
    def test_fresh_manager_required(self):
        from repro.bdd import ZDD
        zdd = ZDD(var_names=["stale"])
        with pytest.raises(ValueError):
            ZddRelationalNet(figure1_net(), zdd=zdd)

    def test_paired_interleaved_elements(self):
        relnet = ZddRelationalNet(figure1_net())
        zdd = relnet.zdd
        assert zdd.num_vars == 2 * len(relnet.net.places)
        for index, place in enumerate(relnet.net.places):
            assert zdd.var_index(place) == 2 * index
            assert zdd.var_index(place + "'") == 2 * index + 1

    def test_initial_family_over_current_elements(self):
        relnet = ZddRelationalNet(figure1_net())
        assert relnet.markings_of(relnet.initial) == [Marking(["p1"])]

    def test_sparse_relation_shape(self):
        """Each sparse relation is the single set ``I ∪ O'`` and its
        support stays local to the touched places."""
        relnet = ZddRelationalNet(figure4_net())
        zdd = relnet.zdd
        full_width = 2 * len(relnet.net.places)
        for transition, sparse in relnet.sparse_relations().items():
            pre = relnet.net.preset(transition)
            post = relnet.net.postset(transition)
            sets = zdd.to_name_sets(sparse.relation)
            assert sets == [frozenset(pre)
                            | frozenset(p + "'" for p in post)]
            assert len(sparse.support) < full_width
            assert sparse.support == relnet.transition_support(transition)

    def test_image_all_matches_classic(self, make_net):
        """The relational per-transition image equals the classic
        subset1/change rewrite on the same family."""
        for name in ("figure1", "muller3", "slot2"):
            net = make_net(name)
            classic = ZddNet(net)
            relational = ZddRelationalNet(make_net(name))
            reached = classic.initial
            rel_states = relational.initial
            for _ in range(3):
                classic_img = classic.image_all(reached)
                relational_img = relational.image_all(rel_states)
                classic_sets = {m.support
                                for m in classic.markings_of(classic_img)}
                relational_sets = {
                    m.support
                    for m in relational.markings_of(relational_img)}
                assert classic_sets == relational_sets, name
                reached = classic.zdd.union(reached, classic_img)
                rel_states = relational.zdd.union(rel_states,
                                                  relational_img)

    def test_partition_blocks_cover_all_transitions(self):
        relnet = ZddRelationalNet(figure4_net())
        for cluster_size in (1, 2, 5, 100, "auto"):
            blocks = relnet.partitions(cluster_size)
            seen = [t for block in blocks for t in block.transitions]
            assert sorted(seen) == sorted(relnet.net.transitions)

    def test_blocks_are_support_sorted(self, make_net):
        relnet = ZddRelationalNet(make_net("slot2"))
        blocks = relnet.partitions(4)
        tops = [block.top_level for block in blocks]
        assert tops == sorted(tops)

    def test_partition_cache_by_granularity(self):
        relnet = ZddRelationalNet(figure4_net())
        assert relnet.partitions(2) is relnet.partitions(2)
        assert relnet.partitions(2) is not relnet.partitions(3)
        assert relnet.partitions("auto") is relnet.partitions("auto")

    def test_invalid_cluster_size_rejected(self):
        relnet = ZddRelationalNet(figure4_net())
        for junk in (0, -3, 2.5, "junk", None, True):
            with pytest.raises(ValueError):
                relnet.partitions(junk)

    def test_partitioned_image_equals_per_transition_union(self, make_net):
        relnet = ZddRelationalNet(make_net("muller4"))
        states = relnet.initial
        for cluster_size in (2, 8, "auto"):
            blocks = relnet.partitions(cluster_size)
            assert relnet.image_partitioned(states, blocks) \
                == relnet.image_all(states)

    def test_monolithic_block_is_all_transitions(self):
        relnet = ZddRelationalNet(figure4_net())
        block = relnet.monolithic_block()
        assert sorted(block.transitions) == sorted(relnet.net.transitions)
        assert relnet.image_monolithic(relnet.initial) \
            == relnet.image_all(relnet.initial)

    def test_rename_maps_are_order_monotone(self):
        relnet = ZddRelationalNet(figure4_net())
        for block in relnet.partitions("auto"):
            pairs = sorted(block.rename.items())
            targets = [dst for _, dst in pairs]
            assert targets == sorted(targets)
            for src, dst in pairs:
                assert src == dst + 1  # next element right below current


class TestTraversal:
    @pytest.mark.parametrize("name,expected", [
        ("figure1", 8),
        ("figure4", 22),
        ("muller3", 30),
        ("slot2", 40),
    ])
    @pytest.mark.parametrize("engine", ZDD_IMAGE_ENGINES)
    def test_counts_match_explicit(self, name, expected, engine, make_net):
        net = make_net(name)
        zddnet = ZddNet(net) if engine == "classic" \
            else ZddRelationalNet(net)
        result = traverse_zdd(zddnet, engine=engine, cluster_size=2)
        assert result.marking_count == expected
        assert result.engine == f"zdd/{engine}"

    def test_reachable_family_decodes_exactly(self):
        net = figure4_net()
        zddnet = ZddNet(net)
        result = traverse_zdd(zddnet)
        explicit = {m.support for m in ReachabilityGraph(net).markings}
        symbolic = {m.support
                    for m in zddnet.markings_of(result.reachable)}
        assert symbolic == explicit

    def test_statistics(self):
        result = traverse_zdd(ZddNet(figure1_net()))
        assert result.variable_count == 7
        assert result.final_zdd_nodes > 2
        assert result.iterations > 0
        assert result.engine == "zdd/classic"
        assert "markings=8" in repr(result)

    def test_chained_cuts_iterations(self, make_net):
        bfs = traverse_zdd(ZddRelationalNet(make_net("slot2")),
                           engine="partitioned")
        chained = traverse_zdd(ZddRelationalNet(make_net("slot2")),
                               engine="chained")
        assert chained.iterations < bfs.iterations
        assert chained.marking_count == bfs.marking_count

    def test_engine_instance_accepted(self):
        relnet = ZddRelationalNet(figure4_net())
        engine = make_zdd_image_engine(relnet, "chained", cluster_size=2)
        result = traverse_zdd(relnet, engine=engine)
        assert result.engine == "zdd/chained"

    def test_engine_instance_for_other_net_rejected(self):
        """An engine built for net B must not run under net A's name —
        the result's node ids would belong to B's manager."""
        engine = make_zdd_image_engine(ZddRelationalNet(figure4_net()),
                                       "chained")
        other = ZddRelationalNet(figure4_net())
        with pytest.raises(ValueError, match="different net"):
            traverse_zdd(other, engine=engine)

    def test_mismatched_net_form_rejected(self, make_net):
        """Engine and net form must match — a silent bridge would hand
        back node ids from a manager the caller never sees, making
        ``markings_of`` on the caller's net decode garbage."""
        with pytest.raises(TypeError, match="ZddRelationalNet"):
            traverse_zdd(ZddNet(make_net("figure4")), engine="chained")
        with pytest.raises(TypeError, match="ZddNet"):
            traverse_zdd(ZddRelationalNet(make_net("figure4")),
                         engine="classic")

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="classic"):
            traverse_zdd(ZddNet(figure1_net()), engine="quantum")

    @pytest.mark.parametrize("junk", [0, -3, 2.5, "junk", None, True])
    def test_bad_cluster_size_rejected_up_front(self, junk):
        with pytest.raises(ValueError, match="auto"):
            make_zdd_image_engine(ZddNet(figure1_net()), "chained",
                                  cluster_size=junk)

    def test_max_iterations_guard(self):
        with pytest.raises(RuntimeError):
            traverse_zdd(ZddNet(figure4_net()), max_iterations=1)
        with pytest.raises(RuntimeError):
            traverse_zdd(ZddRelationalNet(figure4_net()),
                         engine="partitioned", max_iterations=1)

    def test_fused_cache_counters_exposed(self, make_net):
        relnet = ZddRelationalNet(make_net("phil3"))
        traverse_zdd(relnet, engine="chained", cluster_size="auto")
        assert relnet.zdd.ae_calls > 0
        assert relnet.zdd.ae_cache_hits > 0

    def test_zdd_smaller_than_place_count_blowup(self, make_net):
        """ZDD nodes stay near-linear for these structured families —
        the Yoneda effect that motivates Table 4's baseline."""
        small = traverse_zdd(
            ZddNet(make_net("slot2"))).final_zdd_nodes
        large = traverse_zdd(
            ZddNet(make_net("slot4"))).final_zdd_nodes
        assert large < small * 8  # mild growth, not explosion
