"""End-to-end tests for the command-line interface."""

import pytest

from repro.cli import main


@pytest.fixture
def muller_file(tmp_path):
    path = tmp_path / "m3.pnet"
    assert main(["generate", "muller", "3", "-o", str(path)]) == 0
    return path


class TestGenerate:
    def test_generate_to_stdout(self, capsys):
        assert main(["generate", "slot", "2"]) == 0
        out = capsys.readouterr().out
        assert "net slot-2" in out
        assert "place s0_c0 1" in out

    def test_generate_to_file(self, muller_file):
        assert muller_file.exists()
        text = muller_file.read_text()
        assert "net muller-3" in text
        assert "place y0_0" in text

    def test_generate_jjreg_variant(self, tmp_path, capsys):
        path = tmp_path / "jj.pnet"
        assert main(["generate", "jjreg", "3", "--variant", "b",
                     "-o", str(path)]) == 0
        assert "jjreg-b-3" in capsys.readouterr().out

    def test_unknown_family_rejected(self):
        with pytest.raises(SystemExit):
            main(["generate", "nosuch", "3"])


class TestInfo:
    def test_structure_report(self, muller_file, capsys):
        assert main(["info", str(muller_file)]) == 0
        out = capsys.readouterr().out
        assert "12 places" in out
        assert "single-token SMCs: 6" in out
        assert "free_choice" in out

    def test_invariants_flag(self, muller_file, capsys):
        assert main(["info", str(muller_file), "--invariants"]) == 0
        out = capsys.readouterr().out
        assert "P-invariants" in out
        assert "T-invariants" in out


class TestEncode:
    @pytest.mark.parametrize("scheme,expected", [
        ("sparse", "12 variables"),
        ("improved", "6 variables"),
        ("dense", "6 variables"),
    ])
    def test_schemes(self, muller_file, capsys, scheme, expected):
        assert main(["encode", str(muller_file), "--scheme", scheme]) == 0
        assert expected in capsys.readouterr().out


class TestAnalyze:
    def test_bdd_engine(self, muller_file, capsys):
        assert main(["analyze", str(muller_file)]) == 0
        out = capsys.readouterr().out
        assert "markings=30" in out
        assert "scheme=improved" in out

    def test_zdd_engine(self, muller_file, capsys):
        assert main(["analyze", str(muller_file), "--engine", "zdd"]) == 0
        assert "markings=30" in capsys.readouterr().out

    def test_sparse_bfs_no_reorder(self, muller_file, capsys):
        assert main(["analyze", str(muller_file), "--scheme", "sparse",
                     "--strategy", "bfs", "--no-reorder"]) == 0
        out = capsys.readouterr().out
        assert "variables=12" in out
        assert "markings=30" in out

    @pytest.mark.parametrize("image", ["monolithic", "partitioned",
                                       "chained"])
    def test_relational_image_engines(self, muller_file, capsys, image):
        assert main(["analyze", str(muller_file), "--image", image,
                     "--cluster-size", "2"]) == 0
        out = capsys.readouterr().out
        assert "markings=30" in out
        assert f"image=relational/{image}" in out

    def test_functional_support_chaining(self, muller_file, capsys):
        assert main(["analyze", str(muller_file),
                     "--chain-order", "support"]) == 0
        out = capsys.readouterr().out
        assert "markings=30" in out
        assert "image=functional" in out

    def test_deadlocks_require_functional_image(self, muller_file, capsys):
        assert main(["analyze", str(muller_file), "--image", "chained",
                     "--deadlocks"]) == 2
        assert "only supported" in capsys.readouterr().err

    def test_deadlock_report(self, tmp_path, capsys):
        path = tmp_path / "phil.pnet"
        main(["generate", "phil", "2", "-o", str(path)])
        capsys.readouterr()
        assert main(["analyze", str(path), "--deadlocks"]) == 0
        out = capsys.readouterr().out
        assert "markings=22" in out
        assert "deadlocked" in out

    def test_k_bound_analysis(self, muller_file, capsys):
        assert main(["analyze", str(muller_file), "--k-bound", "2"]) == 0
        out = capsys.readouterr().out
        assert "markings=30" in out
        assert "image=kbounded/2" in out

    def test_structured_warnings_go_to_stderr(self, muller_file, capsys):
        assert main(["analyze", str(muller_file), "--engine", "zdd",
                     "--scheme", "sparse", "--simplify-frontier"]) == 0
        err = capsys.readouterr().err
        assert "warning: scheme='sparse' ignored" in err
        assert "warning: simplify_frontier=True ignored" in err

    def test_no_reorder_applies_to_zdd(self, muller_file, capsys):
        # --no-reorder is a real knob on the ZDD backend now (shared
        # repro.dd kernel): no inapplicable-option warning.
        assert main(["analyze", str(muller_file), "--engine", "zdd",
                     "--no-reorder"]) == 0
        assert capsys.readouterr().err == ""

    def test_default_configurations_warn_nothing(self, muller_file,
                                                 capsys):
        for extra in ([], ["--engine", "zdd"], ["--image", "chained"]):
            assert main(["analyze", str(muller_file)] + extra) == 0
            assert capsys.readouterr().err == ""

    def test_invalid_spec_combination_exits_2(self, muller_file, capsys):
        assert main(["analyze", str(muller_file), "--image", "functional",
                     "--cluster-size", "4"]) == 2
        assert "no partitions to cluster" in capsys.readouterr().err
        assert main(["analyze", str(muller_file), "--engine", "zdd",
                     "--k-bound", "2"]) == 2
        assert "only supported on the BDD backend" \
            in capsys.readouterr().err


class TestAnalyzePortfolio:
    def test_race_reports_winner_and_members(self, capsys):
        assert main(["analyze", "--net", "phil", "--n", "3",
                     "--backend", "portfolio"]) == 0
        out = capsys.readouterr().out
        assert "engine=portfolio" in out
        assert "image=portfolio/" in out
        assert "markings=" in out
        assert "portfolio: winner=" in out
        # One status line per default member.
        for member in ("bdd-functional", "bdd-chained", "zdd-chained",
                       "kbounded"):
            assert f"  {member}: " in out

    def test_generated_net_flag(self, capsys):
        assert main(["analyze", "--net", "figure1"]) == 0
        assert "markings=8" in capsys.readouterr().out

    def test_file_and_net_flag_conflict(self, muller_file, capsys):
        assert main(["analyze", str(muller_file), "--net", "phil",
                     "--n", "3"]) == 2
        assert "not both" in capsys.readouterr().err

    def test_net_flag_requires_size(self, capsys):
        assert main(["analyze", "--net", "phil"]) == 2
        assert "--n" in capsys.readouterr().err

    def test_no_net_at_all(self, capsys):
        assert main(["analyze"]) == 2
        assert "net.pnet" in capsys.readouterr().err

    def test_timeout_needs_portfolio_backend(self, muller_file, capsys):
        assert main(["analyze", str(muller_file),
                     "--timeout", "60"]) == 2
        assert "worker processes" in capsys.readouterr().err

    def test_exhausted_race_exits_1(self, capsys):
        # A sub-millisecond global budget expires before any worker can
        # report, so the race fails with every member's status listed.
        assert main(["analyze", "--net", "phil", "--n", "3",
                     "--backend", "portfolio",
                     "--timeout", "0.001"]) == 1
        err = capsys.readouterr().err
        assert "error:" in err
        assert "timeout" in err


class TestDurabilityFlags:
    def test_checkpoint_then_resume(self, muller_file, tmp_path, capsys):
        path = str(tmp_path / "run.ckpt")
        assert main(["analyze", str(muller_file),
                     "--checkpoint", path]) == 0
        import os
        assert os.path.exists(path)
        first = capsys.readouterr().out
        assert main(["analyze", str(muller_file),
                     "--checkpoint", path, "--resume"]) == 0
        out = capsys.readouterr().out
        assert "resume: continued from" in out
        # Same verdict either way.
        assert (first.split("markings=")[1].split()[0]
                == out.split("markings=")[1].split()[0])

    def test_resume_from_damaged_checkpoint_cold_starts(
            self, muller_file, tmp_path, capsys):
        path = tmp_path / "bad.ckpt"
        path.write_text("garbage\n")
        assert main(["analyze", str(muller_file),
                     "--checkpoint", str(path), "--resume"]) == 0
        captured = capsys.readouterr()
        assert "cold start" in captured.err
        assert "markings=" in captured.out

    def test_node_budget_partial_exits_3(self, tmp_path, capsys):
        net = str(tmp_path / "phil6.pnet")
        main(["generate", "phil", "6", "-o", net])
        capsys.readouterr()
        path = str(tmp_path / "phil6.ckpt")
        assert main(["analyze", net, "--node-budget", "50",
                     "--checkpoint", path]) == 3
        captured = capsys.readouterr()
        assert "partial" in captured.err
        assert "lower bound" in captured.err
        import os
        assert os.path.exists(path)
        # Resuming with the budget lifted completes with exit 0.
        assert main(["analyze", net, "--checkpoint", path,
                     "--resume"]) == 0

    def test_deadline_partial_exits_3(self, muller_file, capsys):
        assert main(["analyze", str(muller_file),
                     "--deadline", "0.000001"]) == 3
        assert "deadline" in capsys.readouterr().err

    def test_checkpoint_every_requires_checkpoint(self, muller_file,
                                                  capsys):
        assert main(["analyze", str(muller_file),
                     "--checkpoint-every", "5"]) == 2
        assert "error" in capsys.readouterr().err

    def test_resume_requires_checkpoint(self, muller_file, capsys):
        assert main(["analyze", str(muller_file), "--resume"]) == 2
        assert "error" in capsys.readouterr().err
