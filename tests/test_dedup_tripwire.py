"""Duplication tripwire: the relational layer must stay unified.

PR 3 grew ``symbolic/zdd_relational.py`` into a near line-for-line copy
of ``symbolic/relational.py``'s clustering/partition/sweep machinery;
PR 5 collapsed both onto :mod:`repro.symbolic.partition`.  This test
fails CI if either encoding shim regrows its own copy of that logic —
the one place it may live is the shared layer.
"""

import re
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src" / "repro"

# Methods/functions that must exist exactly once, in the shared layer.
SHARED_ONLY_DEFS = (
    "_auto_clusters",
    "_build_partition",
    "image_chained",
    "image_partitioned",
    "refresh_partitions",
    "cluster_by_support",
    "cluster_greedily",
    "validate_cluster_size",
)

# The encoding shims: allowed to *use* the shared layer, never to
# re-implement it.
SHIMS = (
    SRC / "symbolic" / "zdd_relational.py",
    SRC / "symbolic" / "relational.py",
    SRC / "symbolic" / "transition.py",
    SRC / "symbolic" / "zdd_traversal.py",
)


def definitions_in(path):
    text = path.read_text()
    return {match.group(1)
            for match in re.finditer(r"^\s*def\s+(\w+)\s*\(", text,
                                     re.MULTILINE)}


def test_shims_do_not_redefine_shared_clustering_logic():
    for shim in SHIMS:
        defined = definitions_in(shim)
        copies = sorted(set(SHARED_ONLY_DEFS) & defined)
        assert not copies, (
            f"{shim.relative_to(SRC)} regrew its own copy of shared "
            f"relational-layer logic: {copies}; extend "
            f"repro/symbolic/partition.py instead")


def test_shared_layer_defines_the_logic_exactly_once():
    shared = definitions_in(SRC / "symbolic" / "partition.py")
    missing = sorted(set(SHARED_ONLY_DEFS) - shared)
    assert not missing, (
        f"symbolic/partition.py lost shared definitions: {missing}")


def test_managers_share_the_kernel():
    """The reorder/GC machinery must live once, in repro.dd — neither
    manager file may carry its own swap/sift/GC implementation."""
    kernel_only = ("swap_levels", "collect_garbage", "set_order",
                   "checkpoint", "_free_node", "_deref_cascade")
    for manager_file in (SRC / "bdd" / "manager.py",
                         SRC / "bdd" / "zdd.py"):
        defined = definitions_in(manager_file)
        copies = sorted(set(kernel_only) & defined)
        assert not copies, (
            f"{manager_file.relative_to(SRC)} regrew kernel machinery: "
            f"{copies}; extend repro/dd/manager.py instead")


def test_complement_edge_split_is_pinned():
    """The complement-edge representation belongs to the BDD manager
    alone: edges are ``(node << 1) | bit`` there, while the ZDD keeps
    plain node ids (a complemented ZDD edge has no zero-suppressed
    meaning — see docs/encodings.md).  A future PR flipping either side
    silently would corrupt every persisted dump and cross-manager
    bridge, so the split is pinned here."""
    from repro.bdd import BDD, ZDD
    from repro.dd import DDManager
    assert BDD._edge_shift == 1
    assert BDD.complement_edges is True
    assert ZDD._edge_shift == 0
    assert ZDD.complement_edges is False
    # The kernel default stays plain: new managers must opt in.
    assert DDManager._edge_shift == 0
    assert DDManager.complement_edges is False


def test_negation_lives_once_as_a_bit_flip():
    """With complement edges, negation is ``edge ^ 1`` inside
    ``BDD.apply_not`` — no module may regrow a recursive node-walking
    negation (the pre-complement implementation) beside it."""
    import re
    banned = re.compile(r"def\s+(_?recursive_not|_negate_rec|_not_rec)\b")
    for path in sorted(SRC.rglob("*.py")):
        match = banned.search(path.read_text())
        assert match is None, (
            f"{path.relative_to(SRC)} regrew a recursive negation "
            f"({match.group(1)}); negation is an O(1) bit flip in "
            f"BDD.apply_not")
